"""The shared wireless medium.

The medium knows every node's position and the channel model, and it is the
single place where transmissions are turned into received powers at other
radios.  Starting a transmission registers it with the radios that can
physically notice it (each sees its own received power); the end of the
transmission is scheduled on the event engine, at which point each notified
radio finalises reception or interference bookkeeping.

Scaling model
-------------
Fanning every frame out to all N radios makes per-transmission cost O(N)
*Python calls*, which caps simulations at a few hundred nodes.  Instead the
medium is *finalised* once the topology is complete: the full N x N
received-power matrix is computed in one vectorized pass through the
:class:`~repro.propagation.channel.ChannelModel`.  Each sender's pruned
notification list -- only the radios whose received power exceeds a
detectability floor (the noise floor minus ``detectability_margin_db``;
with the default margin of 16 dB and the default noise floor this lands at
about -110 dBm) -- is then built lazily on its first transmission, so the
O(N * degree) Python tuple packing is paid only for nodes that actually
send.

Power below that floor can never be locked onto (it is far under preamble
sensitivity) -- it only ever matters as summed background energy.  So
instead of notifying sub-floor receivers one Python call at a time, the
medium folds each transmission's sub-floor contributions into a single
vectorized *active sub-floor power* array (one SIMD row add on start, one
subtract on end) that every radio reads as part of its noise term, and
samples worst-case interference for locked radios the same way.  CCA and
SINR therefore see exactly the same total power as the unpruned path (up to
float associativity), while per-transmission Python work is proportional to
the sender's radio neighbourhood.  Pass ``detectability_margin_db=None`` to
disable pruning and notify every radio (the reference behaviour used by the
equivalence tests).

Two deliberately un-tracked details under pruning: per-frame CCA measurement
noise is not applied to sub-floor contributions (noise on a negligible term),
and a radio's ``frames_missed_while_busy`` / ``incoming_count`` only reflect
above-floor frames.  Neither affects delivered traffic; with
``cca_noise_db=0`` pruned and unpruned runs produce identical results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..propagation.channel import ChannelModel
from ..units import linear_to_db
from .engine import Simulator
from .frames import Frame

__all__ = [
    "Transmission",
    "Medium",
    "DEFAULT_DETECTABILITY_MARGIN_DB",
    "DEFAULT_MIN_DISTANCE_M",
]

_transmission_ids = itertools.count()

Position = Tuple[float, float]

#: Pairs closer than this are clamped to it, avoiding unphysical powers when
#: two nodes are placed (nearly) on top of each other.
DEFAULT_MIN_DISTANCE_M: float = 0.5

#: Default pruning margin below the noise floor (dB).  With the default
#: noise floor (~-94 dBm) the detectability floor sits at about -110 dBm,
#: comfortably below both typical preamble sensitivity (-90 dBm) and any
#: sane CCA threshold, so pruned frames could never have been decoded or
#: individually sensed.
DEFAULT_DETECTABILITY_MARGIN_DB: float = 16.0

#: Transmission finishes between exact resyncs of the active sub-floor
#: power vector (bounds incremental float drift).
SUBFLOOR_RESYNC_INTERVAL: int = 4096


@dataclass(slots=True)
class Transmission:
    """One in-flight frame on the medium."""

    frame: Frame
    src: Hashable
    start_time: float
    end_time: float
    tx_id: int = field(default_factory=lambda: next(_transmission_ids))

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class Medium:
    """Propagation-aware broadcast medium connecting all radios.

    Parameters
    ----------
    sim:
        The discrete-event engine.
    channel:
        Physical channel model (path loss + per-pair shadowing).
    min_distance_m:
        Pairs closer than this are clamped to it, avoiding unphysical powers
        when two nodes are placed (nearly) on top of each other.
    detectability_margin_db:
        How far below the noise floor a link may fall before the receiver is
        pruned from the sender's per-frame notification list (its power is
        then tracked in the vectorized sub-floor noise array instead).
        ``None`` disables pruning.
    """

    __slots__ = (
        "sim",
        "channel",
        "min_distance_m",
        "detectability_margin_db",
        "active_transmissions",
        "_positions",
        "_radios",
        "_rx_power_cache",
        "_primed_ids",
        "_primed_rx_dbm",
        "_finalized",
        "_index",
        "_rx_dbm_matrix",
        "_rx_mw_matrix",
        "_notify",
        "_subfloor_rows",
        "_subfloor_masks",
        "_row_built",
        "_subfloor_active_mw",
        "_above_sum_mw",
        "_locked_mask",
        "_locked_power_mw",
        "_locked_max_interference_mw",
        "_cca_live_mw",
        "_cca_threshold_mw",
        "_busy_mirror",
        "_slot_radios",
        "_finishes_since_resync",
    )

    def __init__(
        self,
        sim: Simulator,
        channel: ChannelModel,
        min_distance_m: float = DEFAULT_MIN_DISTANCE_M,
        detectability_margin_db: Optional[float] = DEFAULT_DETECTABILITY_MARGIN_DB,
    ) -> None:
        if detectability_margin_db is not None and detectability_margin_db < 0:
            raise ValueError("detectability margin must be non-negative")
        self.sim = sim
        self.channel = channel
        self.min_distance_m = min_distance_m
        self.detectability_margin_db = detectability_margin_db
        self._positions: Dict[Hashable, Position] = {}
        self._radios: Dict[Hashable, "Radio"] = {}
        self._rx_power_cache: Dict[Tuple[Hashable, Hashable], float] = {}
        self.active_transmissions: Dict[int, Transmission] = {}
        # Optional precomputed rx-power matrix (see prime_rx_matrix).
        self._primed_ids: Optional[Tuple[Hashable, ...]] = None
        self._primed_rx_dbm: Optional[np.ndarray] = None

        # Populated by finalize().
        self._finalized = False
        self._index: Dict[Hashable, int] = {}
        self._rx_dbm_matrix: Optional[np.ndarray] = None
        self._rx_mw_matrix: Optional[np.ndarray] = None
        # Per-sender notification table: (radio, power_mw, power_dbm) per
        # audible receiver.  The dBm value is precomputed when the row is
        # built so the per-frame deliver path never converts units.  Rows
        # are built *lazily*, on a sender's first transmission: finalisation
        # computes only the vectorized N x N matrices, and the Python-level
        # tuple packing -- the O(N * degree) part -- is paid per actual
        # sender, so pure receivers (most nodes of a typical scenario)
        # never pay it.
        self._notify: List[Optional[List[Tuple["Radio", float, float]]]] = []
        # Per-sender sub-floor contributions (zero where above floor / self),
        # None for senders every receiver can hear; built with the notify row.
        self._subfloor_rows: List[Optional[np.ndarray]] = []
        self._subfloor_masks: List[Optional[np.ndarray]] = []
        self._row_built: List[bool] = []
        # Live vectorized state, one slot per radio.
        self._subfloor_active_mw: np.ndarray = np.zeros(0)
        self._above_sum_mw: np.ndarray = np.zeros(0)
        self._locked_mask: np.ndarray = np.zeros(0, dtype=bool)
        self._locked_power_mw: np.ndarray = np.zeros(0)
        self._locked_max_interference_mw: np.ndarray = np.zeros(0)
        # Mirrors for the busy-edge check: per-slot CCA power sums, linear
        # CCA thresholds (inf where carrier sense is disabled; captured at
        # finalisation), and each radio's last busy/idle verdict.
        self._cca_live_mw: np.ndarray = np.zeros(0)
        self._cca_threshold_mw: np.ndarray = np.zeros(0)
        self._busy_mirror: np.ndarray = np.zeros(0, dtype=bool)
        self._slot_radios: List["Radio"] = []
        self._finishes_since_resync = 0

    # -- topology ---------------------------------------------------------------

    def register(self, node_id: Hashable, position: Position, radio: "Radio") -> None:
        """Add a node's radio to the medium at the given position."""
        if node_id in self._radios:
            raise ValueError(f"node {node_id!r} is already registered")
        if self.active_transmissions:
            raise RuntimeError("cannot register a radio while frames are in flight")
        self._positions[node_id] = (float(position[0]), float(position[1]))
        self._radios[node_id] = radio
        self._invalidate()

    def _invalidate(self) -> None:
        self._finalized = False
        self._index = {}
        self._rx_dbm_matrix = None
        self._rx_mw_matrix = None
        self._notify = []
        self._subfloor_rows = []
        self._subfloor_masks = []
        self._row_built = []

    @property
    def node_ids(self) -> list:
        return list(self._radios)

    def position(self, node_id: Hashable) -> Position:
        return self._positions[node_id]

    def radio(self, node_id: Hashable) -> "Radio":
        return self._radios[node_id]

    def distance(self, a: Hashable, b: Hashable) -> float:
        """Euclidean distance between two nodes, clamped at ``min_distance_m``."""
        ax, ay = self._positions[a]
        bx, by = self._positions[b]
        return max(float(np.hypot(ax - bx, ay - by)), self.min_distance_m)

    # -- finalisation ----------------------------------------------------------

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def detectability_floor_dbm(self) -> Optional[float]:
        """Received power below which a link is pruned (``None``: no pruning)."""
        if self.detectability_margin_db is None:
            return None
        return self.channel.noise_floor_dbm - self.detectability_margin_db

    @staticmethod
    def compute_rx_dbm_matrix(
        channel: ChannelModel,
        ids: List[Hashable],
        positions: Dict[Hashable, Position],
        min_distance_m: float = DEFAULT_MIN_DISTANCE_M,
    ) -> np.ndarray:
        """The N x N received-power matrix (dBm) finalisation computes.

        Factored out so the warm-pool dispatch path (see
        :mod:`repro.scenarios.execute`) can precompute the matrix once per
        (topology, propagation) group and hand it to later networks through
        :meth:`prime_rx_matrix` -- byte-for-byte the same computation either
        way, including the shadowing draws consumed from ``channel``'s rng.
        """
        coords = np.asarray([positions[node_id] for node_id in ids], dtype=float)
        dx = coords[:, 0][:, None] - coords[:, 0][None, :]
        dy = coords[:, 1][:, None] - coords[:, 1][None, :]
        distances = np.hypot(dx, dy)
        np.maximum(distances, min_distance_m, out=distances)
        rx_dbm = channel.rx_power_matrix(ids, distances)
        np.fill_diagonal(rx_dbm, -np.inf)
        return rx_dbm

    def prime_rx_matrix(
        self,
        ids: List[Hashable],
        rx_dbm: np.ndarray,
        pair_shadowing_db: Optional[Dict] = None,
    ) -> None:
        """Provide a precomputed rx-power matrix for the coming finalisation.

        ``ids`` must list every registered node in registration order by the
        time :meth:`finalize` runs, and ``rx_dbm`` must be the matrix
        :meth:`compute_rx_dbm_matrix` would produce for this medium's channel
        (same channel config and rng seed).  ``pair_shadowing_db`` is the
        channel's per-pair shadowing cache as populated by that computation;
        installing it keeps later per-pair queries (``rx_power_dbm`` before
        finalisation, oracle SNRs, link budgets) consistent with the primed
        matrix instead of lazily re-drawing different values.

        Priming is only sound while the channel's shadowing cache is still
        untouched: if pairs were already drawn or pinned, the primed state is
        discarded and finalisation computes everything itself.  The caller
        must not pin shadowing values between priming and finalisation.
        """
        if self.channel._pair_shadowing_db:
            # The channel already has draws/pins the primed matrix cannot
            # account for; refuse the shortcut rather than risk divergence.
            self._primed_ids = None
            self._primed_rx_dbm = None
            return
        self._primed_ids = tuple(ids)
        self._primed_rx_dbm = np.asarray(rx_dbm, dtype=float)
        if pair_shadowing_db:
            self.channel._pair_shadowing_db.update(pair_shadowing_db)

    def _primed_matrix_for(self, ids: List[Hashable]) -> Optional[np.ndarray]:
        if self._primed_rx_dbm is None:
            return None
        if self._primed_ids != tuple(ids):
            return None
        if self._primed_rx_dbm.shape != (len(ids), len(ids)):
            return None
        # Copy: the primed matrix may be shared by many media (warm cache).
        return self._primed_rx_dbm.copy()

    def finalize(self) -> None:
        """Freeze the topology: batch-compute the rx-power matrices.

        Called automatically by the first :meth:`start_transmission`; safe to
        call again (a no-op once finalised, re-run after new registrations).

        Finalisation does only the vectorized work (the N x N dBm and
        milliwatt matrices plus per-slot state); the per-sender notification
        and sub-floor tables -- Python tuple packing proportional to each
        sender's audible neighbourhood -- are built lazily by
        :meth:`_sender_tables` on a sender's first transmission, so network
        construction no longer pays O(N * degree) for nodes that never
        transmit.
        """
        if self._finalized:
            return
        ids = list(self._radios)
        self._index = {node_id: i for i, node_id in enumerate(ids)}
        n = len(ids)
        radios = [self._radios[node_id] for node_id in ids]

        self._subfloor_active_mw = np.zeros(n)
        self._above_sum_mw = np.zeros(n)
        self._locked_mask = np.zeros(n, dtype=bool)
        self._locked_power_mw = np.zeros(n)
        self._locked_max_interference_mw = np.zeros(n)
        self._cca_live_mw = np.zeros(n)
        self._cca_threshold_mw = np.full(n, np.inf)
        self._busy_mirror = np.zeros(n, dtype=bool)
        self._slot_radios = radios
        self._finishes_since_resync = 0

        self._notify = [None] * n
        self._subfloor_rows = [None] * n
        self._subfloor_masks = [None] * n
        self._row_built = [False] * n

        if n == 0:
            self._rx_dbm_matrix = np.zeros((0, 0))
            self._rx_mw_matrix = np.zeros((0, 0))
            self._finalized = True
            return

        rx_dbm = self._primed_matrix_for(ids)
        if rx_dbm is None:
            rx_dbm = self.compute_rx_dbm_matrix(
                self.channel, ids, self._positions, self.min_distance_m
            )
        rx_mw = np.power(10.0, rx_dbm / 10.0)  # diagonal decays to exactly 0

        for slot, radio in enumerate(radios):
            radio._attach_slot(slot)

        self._rx_dbm_matrix = rx_dbm
        self._rx_mw_matrix = rx_mw
        self._finalized = True

    def _sender_tables(
        self, slot: int
    ) -> Tuple[List[Tuple["Radio", float, float]], Optional[np.ndarray], Optional[np.ndarray]]:
        """The (notify row, sub-floor row, sub-floor mask) for one sender slot,
        built on first use.

        The values are exactly what eager finalisation used to produce: the
        audible set from the dBm matrix against the detectability floor, and
        per-link dBm through :func:`linear_to_db` of the milliwatt row (a
        round trip through linear milliwatts, deliberately NOT the dBm
        matrix, whose floats differ in the last ulp).
        """
        if not self._row_built[slot]:
            rx_dbm_row = self._rx_dbm_matrix[slot]
            rx_mw_row = self._rx_mw_matrix[slot]
            n = len(rx_mw_row)
            floor = self.detectability_floor_dbm
            if floor is None:
                audible = [j for j in range(n) if j != slot]
            else:
                below = rx_dbm_row < floor
                below[slot] = False  # a sender never interferes with itself
                audible = np.nonzero(~below)[0].tolist()
                audible.remove(slot)
                if below.any():
                    self._subfloor_rows[slot] = np.where(below, rx_mw_row, 0.0)
                    self._subfloor_masks[slot] = below
            # Both rows drop to Python-float lists once, so the tuple packing
            # avoids per-element numpy scalar extraction.
            row_mw = rx_mw_row.tolist()
            row_dbm = linear_to_db(rx_mw_row).tolist()
            radios = self._slot_radios
            self._notify[slot] = [(radios[j], row_mw[j], row_dbm[j]) for j in audible]
            self._row_built[slot] = True
        return self._notify[slot], self._subfloor_rows[slot], self._subfloor_masks[slot]

    def neighborhood(self, src: Hashable) -> List[Hashable]:
        """Node ids notified per-frame when ``src`` transmits (after finalisation)."""
        self.finalize()
        notify, _, _ = self._sender_tables(self._index[src])
        return [entry[0].node_id for entry in notify]

    # -- vectorized per-slot state (used by Radio) -------------------------------

    def subfloor_noise_mw(self, slot: int) -> float:
        """Currently-active sub-floor power arriving at the given radio slot."""
        return float(self._subfloor_active_mw[slot])

    def _resync_subfloor(self) -> None:
        """Recompute the active sub-floor vector exactly (bounds float drift)."""
        self._finishes_since_resync = 0
        if not len(self._subfloor_active_mw):
            return
        if not self.active_transmissions:
            self._subfloor_active_mw[:] = 0.0
            return
        total = np.zeros_like(self._subfloor_active_mw)
        for tx in self.active_transmissions.values():
            row = self._subfloor_rows[self._index[tx.src]]
            if row is not None:
                total += row
        self._subfloor_active_mw = total

    def _sync_subfloor_busy_edges(self, mask: np.ndarray) -> None:
        """Fire busy/idle callbacks on radios whose CCA verdict was flipped by
        a sub-floor power change.

        Per-frame notifications only reach above-floor receivers, so a MAC
        waiting on ``on_channel_idle`` would otherwise stall if aggregate
        sub-floor power alone ever crossed its CCA threshold (possible with a
        small ``detectability_margin_db`` and many concurrent far senders).
        One vectorized compare finds candidate flips; only those radios pay a
        Python call, which re-derives the exact verdict.
        """
        live = self._cca_live_mw + self._subfloor_active_mw
        busy = (live > 0.0) & (live + self.noise_floor_mw > self._cca_threshold_mw)
        changed = np.nonzero(mask & (busy != self._busy_mirror))[0]
        for slot in changed:
            self._slot_radios[slot]._update_busy_state()

    # -- static link queries ---------------------------------------------------

    def rx_power_dbm(self, src: Hashable, dst: Hashable) -> float:
        """Static received power (dBm) from ``src`` at ``dst`` (cached)."""
        if self._finalized:
            return float(self._rx_dbm_matrix[self._index[src], self._index[dst]])
        key = (src, dst)
        if key not in self._rx_power_cache:
            budget = self.channel.link_budget(src, dst, self.distance(src, dst))
            self._rx_power_cache[key] = budget.rx_power_dbm
        return self._rx_power_cache[key]

    def rx_power_mw(self, src: Hashable, dst: Hashable) -> float:
        """Static received power (milliwatts) from ``src`` at ``dst``."""
        if self._finalized:
            return float(self._rx_mw_matrix[self._index[src], self._index[dst]])
        return float(10.0 ** (self.rx_power_dbm(src, dst) / 10.0))

    def snr_db(self, src: Hashable, dst: Hashable) -> float:
        """Interference-free SNR (dB) of the ``src -> dst`` link."""
        return self.rx_power_dbm(src, dst) - self.channel.noise_floor_dbm

    @property
    def noise_floor_mw(self) -> float:
        return self.channel.noise_floor_mw

    # -- transmission lifecycle ---------------------------------------------------

    def start_transmission(self, src: Hashable, frame: Frame) -> Transmission:
        """Put a frame on the air from ``src``; returns the transmission record."""
        if src not in self._radios:
            raise KeyError(f"unknown source node {src!r}")
        self.finalize()
        duration = frame.airtime_s
        tx = Transmission(
            frame=frame, src=src, start_time=self.sim.now, end_time=self.sim.now + duration
        )
        self.active_transmissions[tx.tx_id] = tx
        src_slot = self._index[src]

        notify, subfloor, _ = self._sender_tables(src_slot)
        if subfloor is not None:
            self._subfloor_active_mw += subfloor
            # The unpruned path samples worst-case interference at *every*
            # frame start seen by a locked radio; replicate that for radios
            # that only hear this frame as sub-floor energy, in one masked op.
            mask = self._locked_mask & self._subfloor_masks[src_slot]
            if mask.any():
                interference = (
                    self._above_sum_mw[mask]
                    + self._subfloor_active_mw[mask]
                    - self._locked_power_mw[mask]
                )
                np.maximum(
                    self._locked_max_interference_mw[mask],
                    interference,
                    out=interference,
                )
                self._locked_max_interference_mw[mask] = interference

        for radio, power_mw, power_dbm in notify:
            radio.incoming_started(tx, power_mw, power_dbm)
        if subfloor is not None:
            self._sync_subfloor_busy_edges(self._subfloor_masks[src_slot])
        self.sim.schedule_call(duration, lambda: self._finish_transmission(tx))
        return tx

    def _finish_transmission(self, tx: Transmission) -> None:
        del self.active_transmissions[tx.tx_id]
        src_slot = self._index[tx.src]
        # The sender's tables were built when its transmission started.
        subfloor = self._subfloor_rows[src_slot]
        if subfloor is not None:
            self._subfloor_active_mw -= subfloor
            self._finishes_since_resync += 1
            if (
                self._finishes_since_resync >= SUBFLOOR_RESYNC_INTERVAL
                or not self.active_transmissions
            ):
                self._resync_subfloor()
        for entry in self._notify[src_slot]:
            entry[0].incoming_ended(tx)
        if subfloor is not None:
            self._sync_subfloor_busy_edges(self._subfloor_masks[src_slot])
        self._radios[tx.src].transmit_finished(tx)

    def busy_fraction_estimate(self) -> float:
        """Fraction of radios currently observing an active (audible) transmission."""
        if not self._radios:
            return 0.0
        busy = sum(1 for radio in self._radios.values() if radio.incoming_count > 0)
        return busy / len(self._radios)
