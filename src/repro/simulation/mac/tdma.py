"""Ideal time-division multiplexing MAC.

The analytical model's "multiplexing" policy is perfect TDMA: each contender
gets an equal, exclusive share of the channel with no contention overhead.
:class:`TdmaMac` realises this in the packet simulator by driving each node
from a shared :class:`TdmaSchedule`: a node transmits back-to-back frames
only inside its own slots and stays silent otherwise.

The Section 4 experiment protocol measures multiplexing differently (each
pair runs *alone* and the harness halves the time), but a true TDMA MAC is
useful in its own right: the integration tests use it to check that
simulated multiplexing throughput matches the analytical prediction, and the
examples use it to contrast CSMA overhead against an ideal scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import numpy as np

from ...capacity.adaptation import RateSelector
from ..engine import Simulator
from ..frames import Frame, FrameKind
from ..phy import ReceptionOutcome
from ..radio import Radio
from .base import MacBase

__all__ = ["TdmaSchedule", "TdmaMac"]


@dataclass(frozen=True, slots=True)
class TdmaSchedule:
    """A global, repeating slot assignment.

    Parameters
    ----------
    slot_duration_s:
        Length of each slot.  Slots should comfortably fit at least one frame
        at the slowest rate in use.
    slot_owners:
        The node id owning each slot of the repeating cycle.
    """

    slot_duration_s: float
    slot_owners: Sequence[Hashable]

    def __post_init__(self) -> None:
        if self.slot_duration_s <= 0:
            raise ValueError("slot duration must be positive")
        if not self.slot_owners:
            raise ValueError("schedule needs at least one slot")

    @property
    def cycle_duration_s(self) -> float:
        return self.slot_duration_s * len(self.slot_owners)

    def slot_index_at(self, time: float) -> int:
        """Index (within the cycle) of the slot active at ``time``."""
        position = time % self.cycle_duration_s
        return int(position // self.slot_duration_s)

    def owner_at(self, time: float) -> Hashable:
        return self.slot_owners[self.slot_index_at(time)]

    def next_slot_start(self, node_id: Hashable, time: float) -> float:
        """Earliest time at or after ``time`` at which ``node_id`` may transmit.

        Returns ``time`` itself when the node already owns the active slot,
        otherwise the start time of its next owned slot.
        """
        if node_id not in self.slot_owners:
            raise KeyError(f"node {node_id!r} owns no slot in this schedule")
        n = len(self.slot_owners)
        current_index = self.slot_index_at(time)
        if self.slot_owners[current_index] == node_id:
            return time
        cycle_start = time - (time % self.cycle_duration_s)
        for offset in range(1, n + 1):
            index = (current_index + offset) % n
            if self.slot_owners[index] == node_id:
                return cycle_start + (current_index + offset) * self.slot_duration_s
        raise RuntimeError("unreachable: schedule scan failed")

    def slot_end_after(self, time: float) -> float:
        """End time of the slot active at ``time``."""
        index = self.slot_index_at(time)
        cycle_start = time - (time % self.cycle_duration_s)
        return cycle_start + (index + 1) * self.slot_duration_s


class TdmaMac(MacBase):
    """Transmit saturated traffic only within this node's TDMA slots."""

    __slots__ = ("schedule", "guard_time_s", "_pending", "_wakeup")

    def __init__(
        self,
        node_id: Hashable,
        sim: Simulator,
        radio: Radio,
        rate_selector: RateSelector,
        schedule: TdmaSchedule,
        rng: Optional[np.random.Generator] = None,
        guard_time_s: float = 10e-6,
    ) -> None:
        super().__init__(node_id, sim, radio, rate_selector, rng)
        self.schedule = schedule
        self.guard_time_s = guard_time_s
        self._pending: Optional[Frame] = None
        # Single reusable wakeup timer: re-arming recycles its engine slot.
        self._wakeup = sim.timer()

    def start(self) -> None:
        if self.node_id not in self.schedule.slot_owners:
            # Pure receiver: it never transmits, so there is nothing to schedule.
            return
        self._load_next_frame()
        self._schedule_wakeup()

    def _load_next_frame(self) -> None:
        if self.traffic is None:
            self._pending = None
            return
        packet = self.traffic.next_packet()
        if packet is None:
            self._pending = None
            return
        dst, payload_bytes = packet[0], packet[1]
        # Forwarding sources hand out (next_hop, payload, FlowTag) triples;
        # plain sources keep the historical two-element form.
        flow = packet[2] if len(packet) > 2 else None
        rate = self.rate_selector.select((self.node_id, dst))
        if flow is None:
            self._pending = Frame(
                kind=FrameKind.DATA,
                src=self.node_id,
                dst=dst,
                payload_bytes=payload_bytes,
                rate=rate,
                sequence=self.next_sequence(),
                enqueued_at=self.sim.now,
            )
        else:
            enqueued_at = flow.enqueued_at if flow.enqueued_at >= 0.0 else self.sim.now
            self._pending = Frame(
                kind=FrameKind.DATA,
                src=self.node_id,
                dst=dst,
                payload_bytes=payload_bytes,
                rate=rate,
                sequence=self.next_sequence(),
                enqueued_at=enqueued_at,
                flow_src=flow.flow_src,
                flow_dst=flow.flow_dst,
                hops=flow.hops,
            )

    def _in_own_slot(self) -> bool:
        return self.schedule.owner_at(self.sim.now) == self.node_id

    def _set_wakeup(self, delay_s: float) -> None:
        """(Re)arm the single outstanding retry event."""
        self._wakeup.arm(delay_s, self._try_transmit)

    def _schedule_wakeup(self) -> None:
        """Arrange to try transmitting at the start of the next owned slot."""
        next_start = self.schedule.next_slot_start(self.node_id, self.sim.now)
        self._set_wakeup(max(next_start - self.sim.now, 0.0) + 1e-9)

    def _sleep_past_slot(self) -> None:
        """Sleep to the end of the active slot, then look again."""
        slot_end = self.schedule.slot_end_after(self.sim.now)
        self._set_wakeup(max(slot_end - self.sim.now, 0.0) + 1e-9)

    def notify_traffic(self) -> None:
        """An open-loop arrival while dormant: look for a slot immediately."""
        if self.node_id not in self.schedule.slot_owners:
            # Slotless nodes never transmit (mirrors the start() guard).
            return
        if self._pending is None and not self.radio.is_transmitting:
            self._set_wakeup(0.0)

    def _try_transmit(self) -> None:
        if self._pending is None:
            self._load_next_frame()
        if self._pending is None:
            # Queue empty: go dormant until the next slot boundary rather
            # than retrying within the slot (an open-loop source wakes us
            # sooner through notify_traffic; spinning here melts the engine).
            self._sleep_past_slot()
            return
        if not self._in_own_slot() or self.radio.is_transmitting:
            self._schedule_wakeup()
            return
        slot_end = self.schedule.slot_end_after(self.sim.now)
        if self.sim.now + self._pending.airtime_s + self.guard_time_s > slot_end:
            # Frame no longer fits in this slot; sleep until the slot is over
            # and then look for the next owned slot.
            self._sleep_past_slot()
            return
        frame = self._pending
        self.stats.data_frames_sent += 1
        self.radio.transmit(frame)

    def _on_transmit_complete(self, frame: Frame) -> None:
        self.stats.data_frames_delivered += 1
        if self.traffic is not None:
            self.traffic.notify_sent(frame)
        self.rate_selector.report((self.node_id, frame.dst), frame.rate, True, frame.airtime_s)
        self._pending = None
        self._load_next_frame()
        self._set_wakeup(0.0)

    def _on_channel_busy(self) -> None:
        return None

    def _on_channel_idle(self) -> None:
        return None

    def _on_frame_received(self, outcome: ReceptionOutcome) -> None:
        frame = outcome.frame
        if not outcome.success:
            self.stats.rx_failed_frames += 1
            return
        if frame.kind == FrameKind.DATA:
            self.stats.rx_data_frames += 1
            self.on_data_received(frame)
