"""CSMA/CA MAC with configurable clear-channel assessment.

This is the workhorse MAC of the reproduction.  It implements the DCF-style
access procedure used by 802.11:

1. wait for the channel to be idle for a DIFS;
2. count down a random backoff drawn from ``[0, CW]`` slots, freezing the
   countdown whenever the channel goes busy (and repeating the DIFS wait);
3. transmit the frame.

Behavioural switches reproduce the three Section 4 measurement modes:

* ``cca_threshold_dbm=<power>`` on the radio -- normal carrier sense;
* ``cca_threshold_dbm=None`` -- carrier sense disabled (the paper's
  "concurrency" runs): the channel always looks idle, so senders blast away
  regardless of each other;
* running a single sender alone -- the "multiplexing" runs (the testbed
  harness handles this; no MAC switch needed).

Optionally the MAC supports unicast operation with ACKs, retries with binary
exponential backoff, and RTS/CTS protection (``use_rts_cts=True``), which the
paper discusses as the classic heavyweight fix for hidden terminals.
Broadcast frames are never acknowledged or retried, exactly like 802.11 and
like the paper's experiments.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional

import numpy as np

from ...capacity.adaptation import RateSelector
from ...capacity.rates import (
    ACK_BYTES,
    CW_MAX,
    CW_MIN,
    DIFS_S,
    SIFS_S,
    SLOT_TIME_S,
    OFDM_RATES,
    RateInfo,
    frame_airtime_s,
)
from ..engine import Simulator
from ..frames import BROADCAST, Frame, FrameKind
from ..phy import ReceptionOutcome
from ..radio import Radio
from .base import MacBase

__all__ = ["CsmaMac"]

_RTS_BYTES = 20
_CTS_BYTES = 14


class CsmaMac(MacBase):
    """CSMA/CA (DCF) medium access with optional ACKs and RTS/CTS."""

    __slots__ = (
        "use_acks",
        "use_rts_cts",
        "cw_min",
        "cw_max",
        "retry_limit",
        "difs_s",
        "sifs_s",
        "slot_s",
        "control_rate",
        "_cw",
        "_pending",
        "_backoff_slots_remaining",
        "_timer",
        "_backoff_started_at",
        "_state",
        "_awaiting_ack_for",
        "_awaiting_cts_for",
        "_nav_until",
        "_ack_timeout_s",
        "_cts_timeout_s",
        "slot_commit",
        "_timer_deadline",
    )

    def __init__(
        self,
        node_id: Hashable,
        sim: Simulator,
        radio: Radio,
        rate_selector: RateSelector,
        rng: Optional[np.random.Generator] = None,
        use_acks: bool = False,
        use_rts_cts: bool = False,
        slot_commit: bool = False,
        cw_min: int = CW_MIN,
        cw_max: int = CW_MAX,
        retry_limit: int = 7,
        difs_s: float = DIFS_S,
        sifs_s: float = SIFS_S,
        slot_s: float = SLOT_TIME_S,
        control_rate: RateInfo = OFDM_RATES[0],
    ) -> None:
        super().__init__(node_id, sim, radio, rate_selector, rng)
        if cw_min < 1 or cw_max < cw_min:
            raise ValueError("need 1 <= cw_min <= cw_max")
        if retry_limit < 0:
            raise ValueError("retry limit must be non-negative")
        self.use_acks = use_acks
        self.use_rts_cts = use_rts_cts
        #: 802.11 slotting semantics: a station whose countdown expires at
        #: the very instant another station starts transmitting is already
        #: committed -- CCA takes a slot to detect energy (that is why
        #: aSlotTime exists), so same-slot decisions collide.  Off by
        #: default, which preserves the historical zero-latency carrier
        #: sense where simultaneous deciders defer synchronously; on, the
        #: MAC matches the slotted-collision structure Bianchi's model (and
        #: real DCF hardware) assumes.  See ``repro.networking.bianchi``.
        self.slot_commit = slot_commit
        self.cw_min = cw_min
        self.cw_max = cw_max
        self.retry_limit = retry_limit
        self.difs_s = difs_s
        self.sifs_s = sifs_s
        self.slot_s = slot_s
        self.control_rate = control_rate

        self._cw = cw_min
        self._pending: Optional[Frame] = None
        self._backoff_slots_remaining: Optional[int] = None
        # One reusable engine timer covers every exclusive MAC timeout (NAV,
        # DIFS, backoff, CTS/ACK waits, SIFS-before-data): re-arming recycles
        # the same scheduler slot instead of allocating a handle per timeout.
        self._timer = sim.timer()
        self._backoff_started_at: Optional[float] = None
        self._timer_deadline = float("inf")
        self._state = "idle"
        self._awaiting_ack_for: Optional[Frame] = None
        self._awaiting_cts_for: Optional[Frame] = None
        self._nav_until = 0.0
        # Control-frame response timeouts are fixed by the control rate;
        # precompute them instead of building a throwaway Frame per wait.
        self._ack_timeout_s = sifs_s + 2 * slot_s + frame_airtime_s(
            ACK_BYTES, control_rate, include_mac_header=False
        )
        self._cts_timeout_s = sifs_s + 2 * slot_s + frame_airtime_s(
            _CTS_BYTES, control_rate, include_mac_header=False
        )

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Kick off the access procedure for the first queued packet."""
        self._load_next_frame()
        if self._pending is not None:
            self._begin_access()

    def notify_traffic(self) -> None:
        """Resume access when a packet arrives while the MAC sits idle."""
        if self._state == "idle" and self._pending is None:
            self.start()

    def _load_next_frame(self) -> None:
        if self.traffic is None:
            self._pending = None
            return
        packet = self.traffic.next_packet()
        if packet is None:
            self._pending = None
            return
        dst, payload_bytes = packet[0], packet[1]
        # Forwarding sources hand out (next_hop, payload, FlowTag) triples;
        # plain sources keep the historical two-element form.
        flow = packet[2] if len(packet) > 2 else None
        rate = self.rate_selector.select((self.node_id, dst))
        if flow is None:
            self._pending = Frame(
                kind=FrameKind.DATA,
                src=self.node_id,
                dst=dst,
                payload_bytes=payload_bytes,
                rate=rate,
                sequence=self.next_sequence(),
                enqueued_at=self.sim.now,
            )
        else:
            enqueued_at = flow.enqueued_at if flow.enqueued_at >= 0.0 else self.sim.now
            self._pending = Frame(
                kind=FrameKind.DATA,
                src=self.node_id,
                dst=dst,
                payload_bytes=payload_bytes,
                rate=rate,
                sequence=self.next_sequence(),
                enqueued_at=enqueued_at,
                flow_src=flow.flow_src,
                flow_dst=flow.flow_dst,
                hops=flow.hops,
            )

    # ------------------------------------------------------------------ access

    def _cancel_timer(self) -> None:
        self._timer.cancel()

    def _begin_access(self) -> None:
        """Start (or restart) the DIFS + backoff procedure for the pending frame."""
        if self._pending is None:
            self._state = "idle"
            return
        if self._backoff_slots_remaining is None:
            self._backoff_slots_remaining = int(self.rng.integers(0, self._cw + 1))
        if self.radio.channel_busy() or self.sim.now < self._nav_until:
            self._state = "wait_idle"
            if self.sim.now < self._nav_until:
                self._timer.arm_at(self._nav_until, self._nav_expired)
            return
        self._start_difs()

    def _nav_expired(self) -> None:
        if self._state == "wait_idle":
            self._begin_access()

    def _start_difs(self) -> None:
        self._state = "difs"
        self._timer_deadline = self.sim.now + self.difs_s
        self._timer.arm(self.difs_s, self._difs_elapsed)

    def _difs_elapsed(self) -> None:
        if self._state != "difs":
            return
        self._start_backoff()

    def _start_backoff(self) -> None:
        self._state = "backoff"
        slots = self._backoff_slots_remaining or 0
        if slots <= 0:
            self._transmit_pending()
            return
        self._backoff_started_at = self.sim.now
        self._timer_deadline = self.sim.now + slots * self.slot_s
        self._timer.arm(slots * self.slot_s, self._backoff_elapsed)

    def _backoff_elapsed(self) -> None:
        if self._state != "backoff":
            return
        self._backoff_slots_remaining = 0
        self._transmit_pending()

    def _freeze_backoff(self) -> None:
        """Channel went busy mid-countdown: remember how many slots remain."""
        if self._backoff_started_at is None or self._backoff_slots_remaining is None:
            return
        elapsed_slots = int(math.floor((self.sim.now - self._backoff_started_at) / self.slot_s))
        self._backoff_slots_remaining = max(self._backoff_slots_remaining - elapsed_slots, 1)
        self._backoff_started_at = None

    def _transmit_pending(self) -> None:
        if self._pending is None:
            self._state = "idle"
            return
        if self.use_rts_cts and not self._pending.is_broadcast:
            self._send_rts()
            return
        self._send_data()

    def _send_data(self) -> None:
        frame = self._pending
        self._state = "transmitting"
        self.stats.data_frames_sent += 1
        self.radio.transmit(frame)

    # ------------------------------------------------------------------ RTS/CTS

    def _send_rts(self) -> None:
        frame = self._pending
        rts = Frame(
            kind=FrameKind.RTS,
            src=self.node_id,
            dst=frame.dst,
            payload_bytes=_RTS_BYTES,
            rate=self.control_rate,
            sequence=frame.sequence,
        )
        self._awaiting_cts_for = frame
        self._state = "transmitting_rts"
        self.radio.transmit(rts)

    def _cts_timeout(self) -> None:
        if self._awaiting_cts_for is None:
            return
        self._awaiting_cts_for = None
        self._handle_failed_attempt()

    # ------------------------------------------------------------------ radio events

    def _committed_to_transmit(self) -> bool:
        """Whether the pending countdown is due at this very instant.

        Under ``slot_commit``, a busy indication arriving exactly when the
        countdown expires is too late to honour: the station decided to
        transmit in this slot and cannot sense the other decider within it.
        The still-armed timer fires later in the same timestamp batch and
        the frames collide on the air, as they would on real hardware.
        """
        if not self.slot_commit:
            return False
        if self.sim.now < self._timer_deadline - 1e-12:
            return False
        # Only a countdown that ends in a transmission commits: DIFS expiry
        # flows straight into _transmit_pending only when no backoff slots
        # remain to count.
        return self._state == "backoff" or not self._backoff_slots_remaining

    def _on_channel_busy(self) -> None:
        if self._state == "difs":
            if self._committed_to_transmit():
                return
            self._cancel_timer()
            self._state = "wait_idle"
        elif self._state == "backoff":
            if self._committed_to_transmit():
                return
            self._cancel_timer()
            self._freeze_backoff()
            self._state = "wait_idle"

    def _on_channel_idle(self) -> None:
        if self._state == "wait_idle":
            self._begin_access()

    def _on_transmit_complete(self, frame: Frame) -> None:
        if frame.kind == FrameKind.DATA:
            if frame.is_broadcast or not self.use_acks:
                # Fire-and-forget traffic gives the adapter no better feedback
                # than "the frame went out"; acknowledged traffic reports on
                # ACK arrival or timeout instead.
                self.rate_selector.report(
                    (self.node_id, frame.dst), frame.rate, True, frame.airtime_s
                )
            if self.use_acks and not frame.is_broadcast:
                self._state = "wait_ack"
                self._awaiting_ack_for = frame
                self._timer.arm(self._ack_timeout_s, self._ack_timeout)
                return
            # Broadcast (or unacknowledged) delivery is fire-and-forget.
            self.stats.data_frames_delivered += 1
            if self.traffic is not None:
                self.traffic.notify_sent(frame)
            self._advance_after_success()
        elif frame.kind == FrameKind.RTS:
            self._state = "wait_cts"
            self._timer.arm(self._cts_timeout_s, self._cts_timeout)
        elif frame.kind in (FrameKind.ACK, FrameKind.CTS):
            # Control responses need no follow-up; resume whatever was pending.
            if self._pending is not None and self._state == "responding":
                self._begin_access()
            elif self._pending is None:
                # Poll the traffic source before parking: an open-loop packet
                # may have arrived while we were responding, and its
                # notify_traffic nudge was ignored because the MAC was busy.
                self._state = "idle"
                self.start()

    def _on_frame_received(self, outcome: ReceptionOutcome) -> None:
        frame = outcome.frame
        if not outcome.success:
            self.stats.rx_failed_frames += 1
            return
        if frame.kind == FrameKind.DATA:
            if frame.dst in (self.node_id, BROADCAST):
                self.stats.rx_data_frames += 1
                self.on_data_received(frame)
                if self.use_acks and frame.dst == self.node_id:
                    self._schedule_ack(frame)
        elif frame.kind == FrameKind.ACK:
            if frame.dst == self.node_id and self._awaiting_ack_for is not None:
                self._cancel_timer()
                self.stats.acks_received += 1
                self.stats.data_frames_delivered += 1
                delivered = self._awaiting_ack_for
                self._awaiting_ack_for = None
                self.rate_selector.report(
                    (self.node_id, delivered.dst), delivered.rate, True, delivered.airtime_s
                )
                if self.traffic is not None:
                    self.traffic.notify_sent(delivered)
                self._cw = self.cw_min
                self._advance_after_success()
        elif frame.kind == FrameKind.RTS:
            if frame.dst == self.node_id:
                self._schedule_cts(frame)
            else:
                self._set_nav(frame)
        elif frame.kind == FrameKind.CTS:
            if frame.dst == self.node_id and self._awaiting_cts_for is not None:
                self._cancel_timer()
                self._awaiting_cts_for = None
                self._state = "sifs_before_data"
                self._timer.arm(self.sifs_s, self._send_data)
            else:
                self._set_nav(frame)

    # ------------------------------------------------------------------ responses

    def _schedule_ack(self, data_frame: Frame) -> None:
        def send_ack() -> None:
            if self.radio.is_transmitting:
                return
            ack = Frame(
                kind=FrameKind.ACK,
                src=self.node_id,
                dst=data_frame.src,
                payload_bytes=ACK_BYTES,
                rate=self.control_rate,
                sequence=data_frame.sequence,
            )
            self.stats.acks_sent += 1
            previous_state = self._state
            if previous_state in ("idle", "wait_idle", "difs", "backoff"):
                self._cancel_timer()
                self._state = "responding"
            self.radio.transmit(ack)

        self.sim.schedule_call(self.sifs_s, send_ack)

    def _schedule_cts(self, rts_frame: Frame) -> None:
        def send_cts() -> None:
            if self.radio.is_transmitting:
                return
            cts = Frame(
                kind=FrameKind.CTS,
                src=self.node_id,
                dst=rts_frame.src,
                payload_bytes=_CTS_BYTES,
                rate=self.control_rate,
                sequence=rts_frame.sequence,
            )
            previous_state = self._state
            if previous_state in ("idle", "wait_idle", "difs", "backoff"):
                self._cancel_timer()
                self._state = "responding"
            self.radio.transmit(cts)

        self.sim.schedule_call(self.sifs_s, send_cts)

    def _set_nav(self, frame: Frame) -> None:
        """Virtual carrier sense: defer for a conservative exchange duration."""
        reservation = self.sifs_s * 3 + 3 * frame.airtime_s + 2e-3
        self._nav_until = max(self._nav_until, self.sim.now + reservation)

    # ------------------------------------------------------------------ retry / advance

    def _ack_timeout(self) -> None:
        if self._awaiting_ack_for is None:
            return
        frame = self._awaiting_ack_for
        self._awaiting_ack_for = None
        self.rate_selector.report((self.node_id, frame.dst), frame.rate, False, frame.airtime_s)
        self._handle_failed_attempt()

    def _handle_failed_attempt(self) -> None:
        frame = self._pending
        if frame is None:
            self._state = "idle"
            return
        if frame.retry >= self.retry_limit:
            self.stats.drops += 1
            self._cw = self.cw_min
            if self.traffic is not None:
                self.traffic.notify_sent(frame)
            self._load_next_frame()
        else:
            self.stats.retries += 1
            self._cw = min(2 * self._cw + 1, self.cw_max)
            self._pending = frame.as_retry()
        self._backoff_slots_remaining = None
        if self._pending is not None:
            self._begin_access()
        else:
            self._state = "idle"

    def _advance_after_success(self) -> None:
        self._load_next_frame()
        self._backoff_slots_remaining = None
        if self._pending is not None:
            self._begin_access()
        else:
            self._state = "idle"
