"""MAC protocol interface.

A MAC drives one node's radio: it decides *when* to transmit the packets the
node's traffic source provides, reacts to channel busy/idle transitions, and
handles received frames.  Concrete implementations:

* :class:`repro.simulation.mac.csma.CsmaMac` -- CSMA/CA with a configurable
  CCA threshold (set the threshold to ``None`` for the "carrier sense
  disabled" concurrency mode of the Section 4 experiments), optional
  ACK/retry, and optional RTS/CTS protection.
* :class:`repro.simulation.mac.tdma.TdmaMac` -- ideal slotted time-division
  multiplexing driven by a global schedule.
"""

from __future__ import annotations

import zlib
from typing import Callable, Hashable, Optional

import numpy as np

from ...capacity.adaptation import RateSelector
from ..engine import Simulator
from ..frames import Frame
from ..phy import ReceptionOutcome
from ..radio import Radio

__all__ = ["MacBase", "MacStats"]


def _default_mac_rng(node_id: Hashable) -> np.random.Generator:
    """Deterministic fallback stream for a MAC constructed without an rng.

    Every real construction path (``WirelessNetwork.add_node``) injects a
    seeded child generator; this fallback only serves hand-built MACs in
    tests and exploratory scripts.  Seeding from the node id (salted so the
    stream differs from the radio's identically-derived fallback) keeps
    even those runs replayable, and distinct nodes still get distinct
    backoff streams.
    """
    entropy = zlib.crc32(f"mac|{node_id!r}".encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence(entropy=entropy))


class MacStats:
    """Counters every MAC keeps, shared across implementations."""

    __slots__ = (
        "data_frames_sent",
        "data_frames_delivered",
        "acks_sent",
        "acks_received",
        "retries",
        "drops",
        "rx_data_frames",
        "rx_failed_frames",
    )

    def __init__(self) -> None:
        self.data_frames_sent = 0
        self.data_frames_delivered = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.retries = 0
        self.drops = 0
        self.rx_data_frames = 0
        self.rx_failed_frames = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class MacBase:
    """Common wiring between a MAC, its radio, and its traffic source."""

    __slots__ = (
        "node_id",
        "sim",
        "radio",
        "rate_selector",
        "rng",
        "stats",
        "traffic",
        "_sequence",
        "on_data_received",
    )

    def __init__(
        self,
        node_id: Hashable,
        sim: Simulator,
        radio: Radio,
        rate_selector: RateSelector,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.radio = radio
        self.rate_selector = rate_selector
        self.rng = rng if rng is not None else _default_mac_rng(node_id)
        self.stats = MacStats()
        self.traffic = None  # set by Node
        self._sequence = 0

        # Observers (e.g. node-level stats) may hook this to see every
        # successfully received data frame.
        self.on_data_received: Callable[[Frame], None] = lambda frame: None

        radio.on_channel_busy = self._on_channel_busy
        radio.on_channel_idle = self._on_channel_idle
        radio.on_frame_received = self._on_frame_received
        radio.on_transmit_complete = self._on_transmit_complete

    # -- to be provided by subclasses ------------------------------------------

    def start(self) -> None:
        """Begin operation (called once when the network starts)."""
        raise NotImplementedError

    def _on_channel_busy(self) -> None:
        raise NotImplementedError

    def _on_channel_idle(self) -> None:
        raise NotImplementedError

    def _on_frame_received(self, outcome: ReceptionOutcome) -> None:
        raise NotImplementedError

    def _on_transmit_complete(self, frame: Frame) -> None:
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------------

    def next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def attach_traffic(self, traffic) -> None:
        """Connect the node's traffic source (called by Node).

        Open-loop sources expose an ``on_arrival`` hook; wiring it here (the
        single chokepoint every construction path goes through) means any
        MAC that goes dormant on an empty queue is woken by the next arrival
        without callers having to remember the plumbing.
        """
        self.traffic = traffic
        if getattr(traffic, "on_arrival", "absent") is None:
            traffic.on_arrival = self.notify_traffic

    def notify_traffic(self) -> None:
        """Hint that the traffic source has packets again.

        Open-loop sources (e.g. :class:`PoissonTraffic`) call this when a
        packet arrives into an empty queue; MACs that go dormant on an empty
        source override it to resume their access procedure.  The default is
        a no-op, which is correct for MACs that poll on their own clock.
        """
