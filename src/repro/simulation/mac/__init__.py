"""MAC protocol implementations for the packet-level simulator."""

from .base import MacBase, MacStats
from .csma import CsmaMac
from .tdma import TdmaMac, TdmaSchedule

__all__ = ["MacBase", "MacStats", "CsmaMac", "TdmaMac", "TdmaSchedule"]
