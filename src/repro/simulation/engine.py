"""Discrete-event simulation engine.

A minimal, dependency-free event scheduler in the style of simpy's core: the
simulator keeps a priority queue of timestamped callbacks and executes them in
time order.  Everything in :mod:`repro.simulation` (radios, MACs, traffic
sources) is written against this engine.

Determinism: events scheduled for the same timestamp execute in scheduling
order (a monotonically increasing sequence number breaks ties), so simulation
runs are exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventHandle", "Simulator"]


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass
class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    _entry: _QueueEntry

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        """Cancel the event; cancelled events are skipped when dequeued."""
        self._entry.cancelled = True


class Simulator:
    """Priority-queue discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled placeholders)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        entry = _QueueEntry(self._now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(f"cannot schedule into the past (time={time}, now={self._now})")
        return self.schedule(time - self._now, callback)

    def run(self, until: Optional[float] = None) -> None:
        """Run events in time order, optionally stopping at time ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue empties earlier, so measurement windows have a
        well-defined length.
        """
        while self._queue:
            entry = self._queue[0]
            if until is not None and entry.time > until:
                break
            heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            entry.callback()
            self._events_processed += 1
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False when idle."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            entry.callback()
            self._events_processed += 1
            return True
        return False
