"""Discrete-event simulation engine.

A minimal, dependency-free event scheduler in the style of simpy's core: the
simulator keeps a priority queue of timestamped callbacks and executes them in
time order.  Everything in :mod:`repro.simulation` (radios, MACs, traffic
sources) is written against this engine.

Scheduling model
----------------
The heap holds plain ``(time, seq, slot, gen)`` tuples instead of per-event
objects.  ``slot`` indexes a slab of parallel arrays (callback, generation
counter, owner) so scheduling allocates no bookkeeping object on the hot
path, and cancellation is O(1): bumping the slot's generation counter
invalidates the heap entry without touching the heap.  Stale entries are
skipped when popped, and when cancelled entries outnumber live ones the heap
is compacted in one pass, so heavy timer churn (CSMA backoff, CCA defers)
cannot grow the queue without bound.

Three scheduling flavours trade convenience for allocation cost:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`EventHandle` that supports cancellation and records whether the
  event fired or was cancelled;
* :meth:`Simulator.schedule_call` / :meth:`Simulator.schedule_many` are
  fire-and-forget -- no handle is created at all;
* :meth:`Simulator.timer` returns a reusable :class:`Timer` that owns one
  slab slot for its whole life, so re-arming a recurring timeout (the CSMA
  MAC's DIFS/backoff/ACK timers) recycles the slot instead of allocating.

Determinism: events scheduled for the same timestamp execute in scheduling
order (a monotonically increasing sequence number breaks ties), so simulation
runs are exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Tuple

__all__ = ["EventHandle", "Timer", "Simulator"]

_PENDING = 0
_FIRED = 1
_CANCELLED = 2

#: Tombstone count below which compaction is never attempted (a small heap is
#: cheaper to scan lazily than to rebuild).
_COMPACT_MIN_DEAD = 512


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation.

    The handle tracks a definite lifecycle: pending, then exactly one of
    *fired* or *cancelled*.  Calling :meth:`cancel` on an event that already
    executed (or was already cancelled) is a no-op -- it neither raises nor
    disturbs whatever now occupies the event's slab slot.
    """

    __slots__ = ("_sim", "_slot", "_time", "_status")

    def __init__(self, sim: "Simulator", slot: int, time: float) -> None:
        self._sim = sim
        self._slot = slot
        self._time = time
        self._status = _PENDING

    @property
    def time(self) -> float:
        return self._time

    @property
    def pending(self) -> bool:
        return self._status == _PENDING

    @property
    def fired(self) -> bool:
        """Whether the event's callback has executed."""
        return self._status == _FIRED

    @property
    def cancelled(self) -> bool:
        return self._status == _CANCELLED

    def cancel(self) -> None:
        """Cancel the event if it is still pending; otherwise do nothing."""
        if self._status != _PENDING:
            return
        self._status = _CANCELLED
        self._sim._release_pending_slot(self._slot)


class Timer:
    """A reusable timer owning one slab slot for its whole lifetime.

    Re-arming never allocates: the slot's generation counter tombstones any
    previously pending firing and the new entry reuses the same slot.  One
    timer holds at most one pending firing; arming an armed timer replaces
    the earlier one.
    """

    __slots__ = ("_sim", "_slot", "_armed", "_time")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._slot = sim._alloc_slot()
        self._armed = False
        self._time = 0.0
        sim._owner[self._slot] = self

    @property
    def armed(self) -> bool:
        return self._armed

    @property
    def time(self) -> float:
        """Scheduled firing time of the pending arm (meaningless when idle)."""
        return self._time

    def arm(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.arm_at(self._sim._now + delay, callback)

    def arm_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute simulation time."""
        sim = self._sim
        if time < sim._now:
            raise ValueError(f"cannot schedule into the past (time={time}, now={sim._now})")
        slot = self._slot
        if self._armed:
            sim._tombstone_slot(slot)
        sim._cb[slot] = callback
        sim._seq += 1
        heapq.heappush(sim._heap, (time, sim._seq, slot, sim._gen[slot]))
        sim._live += 1
        self._armed = True
        self._time = time

    def cancel(self) -> None:
        """Disarm the timer if armed; otherwise do nothing."""
        if not self._armed:
            return
        self._armed = False
        sim = self._sim
        sim._tombstone_slot(self._slot)
        sim._cb[self._slot] = None
        sim._maybe_compact()


class Simulator:
    """Slab-backed priority-queue discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    __slots__ = (
        "_now",
        "_heap",
        "_cb",
        "_gen",
        "_owner",
        "_free",
        "_seq",
        "_live",
        "_dead",
        "_events_processed",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, int]] = []
        # Slab: parallel arrays indexed by slot.
        self._cb: List[Optional[Callable[[], None]]] = []
        self._gen: List[int] = []
        self._owner: List[object] = []
        self._free: List[int] = []
        self._seq = 0
        self._live = 0  # non-tombstoned entries in the heap
        self._dead = 0  # tombstoned entries awaiting skip/compaction
        self._events_processed = 0

    # -- slab management ----------------------------------------------------------

    def _alloc_slot(self) -> int:
        if self._free:
            return self._free.pop()
        self._cb.append(None)
        self._gen.append(0)
        self._owner.append(None)
        return len(self._cb) - 1

    def _tombstone_slot(self, slot: int) -> None:
        """Invalidate the slot's pending heap entry (generation bump)."""
        self._gen[slot] += 1
        self._live -= 1
        self._dead += 1

    def _release_pending_slot(self, slot: int) -> None:
        """Cancel path: tombstone the entry and return the slot to the pool."""
        self._tombstone_slot(slot)
        self._cb[slot] = None
        self._owner[slot] = None
        self._free.append(slot)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if self._dead >= _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned heap entries in one pass and re-heapify.

        Entry order is fully determined by the unique ``(time, seq)`` prefix,
        so rebuilding the heap cannot perturb execution order.  Rebuilds in
        place: the run loop holds a reference to the heap list while events
        (whose callbacks may cancel other events) execute.
        """
        gen = self._gen
        heap = self._heap
        heap[:] = [entry for entry in heap if gen[entry[2]] == entry[3]]
        heapq.heapify(heap)
        self._dead = 0

    # -- introspection -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    @property
    def cancelled_events(self) -> int:
        """Cancelled tombstones currently awaiting skip or compaction."""
        return self._dead

    @property
    def heap_size(self) -> int:
        """Raw heap length: live entries plus not-yet-collected tombstones."""
        return len(self._heap)

    # -- scheduling ----------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        slot = self._alloc_slot()
        self._cb[slot] = callback
        handle = EventHandle(self, slot, time)
        self._owner[slot] = handle
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, slot, self._gen[slot]))
        self._live += 1
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(f"cannot schedule into the past (time={time}, now={self._now})")
        return self.schedule(time - self._now, callback)

    def schedule_call(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget scheduling: no :class:`EventHandle` is created.

        The hot path for events that are never cancelled (frame completions,
        control-frame responses, traffic arrivals).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        slot = self._alloc_slot()
        self._cb[slot] = callback
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, slot, self._gen[slot]))
        self._live += 1

    def schedule_many(self, items: Iterable[Tuple[float, Callable[[], None]]]) -> None:
        """Batch fire-and-forget scheduling of ``(delay, callback)`` pairs.

        Preserves the iteration order for same-timestamp ties, exactly as if
        each pair had been passed to :meth:`schedule_call` in turn.
        """
        heap = self._heap
        now = self._now
        for delay, callback in items:
            if delay < 0:
                raise ValueError(f"cannot schedule into the past (delay={delay})")
            slot = self._alloc_slot()
            self._cb[slot] = callback
            self._seq += 1
            heapq.heappush(heap, (now + delay, self._seq, slot, self._gen[slot]))
            self._live += 1

    def timer(self) -> Timer:
        """A reusable :class:`Timer` bound to this simulator."""
        return Timer(self)

    # -- execution -----------------------------------------------------------------

    def _collect_fired_slot(self, slot: int) -> Callable[[], None]:
        """Bookkeeping for a just-popped live entry; returns its callback.

        Shared by :meth:`run` and :meth:`step` so the invariant-dense slot
        recycling (generation bumps, owner lifecycle, free-list return)
        exists exactly once.
        """
        callback = self._cb[slot]
        own = self._owner[slot]
        self._live -= 1
        if own is None:
            self._gen[slot] += 1
            self._cb[slot] = None
            self._free.append(slot)
        elif own.__class__ is Timer:
            own._armed = False
            self._cb[slot] = None
        else:  # EventHandle
            own._status = _FIRED
            self._gen[slot] += 1
            self._cb[slot] = None
            self._owner[slot] = None
            self._free.append(slot)
        return callback

    def run(self, until: Optional[float] = None) -> None:
        """Run events in time order, optionally stopping at time ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue empties earlier, so measurement windows have a
        well-defined length.
        """
        heap = self._heap
        pop = heapq.heappop
        gen = self._gen
        collect = self._collect_fired_slot
        while heap:
            head = heap[0]
            if until is not None and head[0] > until:
                break
            time, _seq, slot, entry_gen = pop(heap)
            if gen[slot] != entry_gen:
                self._dead -= 1
                continue
            callback = collect(slot)
            self._now = time
            callback()
            self._events_processed += 1
        if until is not None and until > self._now:
            self._now = until

    def run_until(self, time: float) -> None:
        """Run events up to and including ``time``, leaving the clock there.

        The bounded *re-entrant* form of :meth:`run`: calling it repeatedly
        with increasing times executes exactly the events a single
        ``run(until=last_time)`` would, in the same order, with the same
        final ``events_processed`` count.  Slot recycling guarantees the
        segmentation is invisible: one-shot events and fired timers are
        collected when they pop, so a later segment can never re-execute
        them, and ``events_processed`` counts each event exactly once.
        Events scheduled *at* a segment boundary fire in the segment that
        ends there (``run``'s inclusive-``until`` rule), so stepped drivers
        (:class:`repro.control.env.SimEnv`) observe windows with
        well-defined closed right edges.

        Unlike ``run(until=...)`` -- which silently does nothing useful for
        a bound in the past -- a backwards target is rejected, because a
        stepped caller asking to run to an earlier time is always a bug.
        """
        if time < self._now:
            raise ValueError(
                f"cannot run backwards (time={time}, now={self._now})"
            )
        self.run(until=time)

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False when idle."""
        heap = self._heap
        gen = self._gen
        while heap:
            time, _seq, slot, entry_gen = heapq.heappop(heap)
            if gen[slot] != entry_gen:
                self._dead -= 1
                continue
            callback = self._collect_fired_slot(slot)
            self._now = time
            callback()
            self._events_processed += 1
            return True
        return False
