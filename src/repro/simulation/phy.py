"""PHY reception model: deciding whether a frame survives its SINR.

The medium computes, for every frame arriving at a radio, the received signal
power and the worst-case interference power overlapping the frame.  This
module turns those numbers into a success/failure decision using the
modulation/coding error models of :mod:`repro.capacity.error_models`.

Two details mirror real 802.11 hardware (and the paper's experimental
conditions):

* **Sensitivity / preamble detection** -- a frame whose received power is
  below the radio's sensitivity is never locked onto; it only ever appears as
  interference (this is also what makes "hidden" senders invisible to carrier
  sense when energy detection is disabled).
* **No receive abort** -- once a radio locks onto a frame it stays locked for
  the frame's duration even if a much stronger frame arrives; the later frame
  is treated purely as interference.  The paper notes its testbed behaved this
  way ("we used broadcast packets and did not have receive abort enabled").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..capacity.error_models import packet_success_rate
from ..capacity.rates import RateInfo
from .frames import Frame, FrameKind

__all__ = ["ReceptionModel", "ReceptionOutcome"]


@dataclass(frozen=True, slots=True)
class ReceptionOutcome:
    """The result of attempting to decode one frame."""

    frame: Frame
    success: bool
    sinr_db: float
    success_probability: float


@dataclass(slots=True)
class ReceptionModel:
    """SINR-based frame reception decisions.

    Parameters
    ----------
    sensitivity_dbm:
        Minimum received power for preamble detection / locking.  -90 dBm is
        typical of good 802.11a hardware at the 6 Mbps rate.
    snr_jitter_db:
        Per-frame Gaussian SNR perturbation (dB) representing the residual
        fading and temporal channel variation that a wideband radio cannot
        average away.  Applied before the error model; set to zero for fully
        deterministic link behaviour.
    deterministic:
        When true, a frame succeeds iff its success probability exceeds 0.5
        and no jitter is applied (useful for exactly reproducible unit
        tests); otherwise the outcome is a Bernoulli draw.
    control_rate_bonus_db:
        Extra robustness granted to short control frames (ACK/RTS/CTS), which
        in real hardware are sent at base rate and are much shorter than data
        frames.  Expressed as an equivalent SINR bonus.
    """

    sensitivity_dbm: float = -90.0
    snr_jitter_db: float = 3.0
    preamble_snr_threshold_db: float = 4.0
    capture_margin_db: float = 10.0
    deterministic: bool = False
    control_rate_bonus_db: float = 3.0

    def detectable(self, rx_power_dbm: float) -> bool:
        """Whether a frame at this power can be locked onto at all."""
        return rx_power_dbm >= self.sensitivity_dbm

    def preamble_detectable(self, rx_power_dbm: float, sinr_db: float) -> bool:
        """Whether the PLCP preamble can actually be acquired.

        Locking requires both adequate absolute power and enough SINR for the
        preamble correlator; a frame buried under stronger interference never
        produces a lock, it is just energy on the channel.
        """
        return rx_power_dbm >= self.sensitivity_dbm and sinr_db >= self.preamble_snr_threshold_db

    def captures(self, new_power_dbm: float, locked_power_dbm: float) -> bool:
        """Whether a newly arriving frame steals the lock from the current one.

        Models physical-layer capture / receiver restart: commodity OFDM
        receivers re-synchronise onto a preamble that is sufficiently stronger
        than the frame they are currently (hopelessly) decoding.
        """
        if not self.detectable(new_power_dbm):
            return False
        return new_power_dbm >= locked_power_dbm + self.capture_margin_db

    def success_probability(self, frame: Frame, sinr_db: float) -> float:
        """Probability that the frame decodes at the given SINR."""
        effective_sinr = sinr_db
        if frame.kind != FrameKind.DATA:
            effective_sinr += self.control_rate_bonus_db
        payload = max(frame.payload_bytes, 14)
        return float(packet_success_rate(effective_sinr, frame.rate, payload))

    def decide(self, frame: Frame, sinr_db: float, rng: np.random.Generator) -> ReceptionOutcome:
        """Decide whether the frame is received."""
        if self.deterministic:
            p = self.success_probability(frame, sinr_db)
            success = p > 0.5
        else:
            effective_sinr = sinr_db
            if self.snr_jitter_db > 0:
                effective_sinr += float(rng.normal(0.0, self.snr_jitter_db))
            p = self.success_probability(frame, effective_sinr)
            success = bool(rng.random() < p)
        return ReceptionOutcome(frame=frame, success=success, sinr_db=sinr_db, success_probability=p)
