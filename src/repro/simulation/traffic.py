"""Traffic sources.

The Section 4 experiments saturate each sender ("each of the two senders
attempts to send 1400-byte packets continuously for 15 seconds"), which is
modelled by :class:`SaturatedTraffic`.  :class:`PoissonTraffic` provides a
rate-limited open-loop alternative for examples and for exercising the MACs
under partial load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional, Tuple, Union

import numpy as np

from ..constants import EXPERIMENT_PAYLOAD_BYTES
from .engine import Simulator
from .frames import BROADCAST, FlowTag, Frame

__all__ = ["TrafficSource", "SaturatedTraffic", "PoissonTraffic", "OnOffTraffic"]

Packet = Tuple[Hashable, int]

#: Multi-hop sources (:class:`repro.networking.ForwardingQueue`) yield a
#: three-element form carrying the end-to-end flow tag the MAC stamps onto
#: the frame; plain sources yield ``(destination, payload_bytes)``.
TaggedPacket = Tuple[Hashable, int, FlowTag]
AnyPacket = Union[Packet, TaggedPacket]


class TrafficSource:
    """Interface the MAC uses to pull packets from the application layer."""

    __slots__ = ()

    def next_packet(self) -> Optional[AnyPacket]:
        """Return ``(destination, payload_bytes)``, optionally extended with
        a :class:`~repro.simulation.frames.FlowTag`, or ``None`` when idle."""
        raise NotImplementedError

    def notify_sent(self, frame: Frame) -> None:
        """Called by the MAC when a packet's transmission attempt concludes."""


@dataclass(slots=True)
class SaturatedTraffic(TrafficSource):
    """An always-backlogged source sending fixed-size packets to one destination."""

    destination: Hashable = BROADCAST
    payload_bytes: int = EXPERIMENT_PAYLOAD_BYTES
    packets_offered: int = 0
    packets_sent: int = 0

    def next_packet(self) -> Optional[Packet]:
        self.packets_offered += 1
        return (self.destination, self.payload_bytes)

    def notify_sent(self, frame: Frame) -> None:
        self.packets_sent += 1


@dataclass(slots=True)
class PoissonTraffic(TrafficSource):
    """Open-loop Poisson arrivals with a bounded queue.

    The MAC polls ``next_packet``; arrivals accumulate in a queue driven by
    the event engine.  This is not used by the paper reproduction experiments
    but rounds out the library for partial-load studies.
    """

    sim: Simulator
    rate_pps: float
    destination: Hashable = BROADCAST
    payload_bytes: int = EXPERIMENT_PAYLOAD_BYTES
    queue_limit: int = 1000
    #: Arrival-gap stream.  Scenario paths inject the network's seeded child
    #: generator; the fallback is a fixed-seed stream so a source built
    #: without one is still replayable (pass distinct rngs to decorrelate
    #: multiple sources).
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )
    packets_offered: int = 0
    packets_dropped: int = 0
    packets_sent: int = 0
    #: Invoked whenever a packet arrives into an empty queue, so a dormant
    #: MAC can resume its access procedure (see ``MacBase.notify_traffic``).
    on_arrival: Optional[Callable[[], None]] = None
    _queue_depth: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError("arrival rate must be positive")
        if self.queue_limit < 1:
            raise ValueError("queue limit must be at least 1")
        self._queue_depth = 0
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        gap = float(self.rng.exponential(1.0 / self.rate_pps))
        self.sim.schedule_call(gap, self._arrival)

    def _arrival(self) -> None:
        self.packets_offered += 1
        if self._queue_depth >= self.queue_limit:
            self.packets_dropped += 1
        else:
            self._queue_depth += 1
            if self._queue_depth == 1 and self.on_arrival is not None:
                self.on_arrival()
        self._schedule_next_arrival()

    def next_packet(self) -> Optional[Packet]:
        if self._queue_depth == 0:
            return None
        self._queue_depth -= 1
        return (self.destination, self.payload_bytes)

    def notify_sent(self, frame: Frame) -> None:
        self.packets_sent += 1

    @property
    def queue_depth(self) -> int:
        return self._queue_depth


@dataclass(slots=True)
class OnOffTraffic(TrafficSource):
    """Bursty ON/OFF source with heavy-tailed (Pareto) burst and idle times.

    During an ON period the source behaves like :class:`SaturatedTraffic`
    (always backlogged); during OFF it yields nothing.  Burst and idle
    durations are Pareto-distributed with shape ``shape`` and means
    ``mean_on_s`` / ``mean_off_s`` -- the classic heavy-tailed ON/OFF model
    whose aggregate is self-similar, and the non-stationary offered load the
    DimDim measurement study motivates for controller evaluation.

    Determinism: state toggles ride the event engine (one event per
    transition) and durations come from the injected ``rng`` -- the
    scenario path passes the network's seeded child stream, so replays are
    exact.  Duration draws use the mean-parameterised Lomax form
    ``x_m * (1 + pareto(shape))`` with ``x_m = mean * (shape - 1) / shape``,
    which has the requested mean for every ``shape > 1``.
    """

    sim: Simulator
    destination: Hashable = BROADCAST
    payload_bytes: int = EXPERIMENT_PAYLOAD_BYTES
    mean_on_s: float = 0.05
    mean_off_s: float = 0.05
    shape: float = 1.5
    start_on: bool = True
    #: Duration stream; scenario paths inject the network's seeded child
    #: generator (fixed-seed fallback keeps bare sources replayable).
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )
    packets_offered: int = 0
    packets_sent: int = 0
    #: Wake hook for a dormant MAC, wired by ``MacBase.attach_traffic``;
    #: invoked when an OFF->ON transition makes packets available again.
    on_arrival: Optional[Callable[[], None]] = None
    _on: bool = field(default=True, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("mean ON/OFF durations must be positive")
        if self.shape <= 1.0:
            raise ValueError(
                "Pareto shape must exceed 1 (the mean is infinite otherwise)"
            )
        self._on = bool(self.start_on)
        self.sim.schedule_call(self._draw_duration(self._on), self._toggle)

    def _draw_duration(self, on: bool) -> float:
        mean = self.mean_on_s if on else self.mean_off_s
        scale = mean * (self.shape - 1.0) / self.shape
        return float(scale * (1.0 + self.rng.pareto(self.shape)))

    def _toggle(self) -> None:
        self._on = not self._on
        if self._on and self.on_arrival is not None:
            self.on_arrival()
        self.sim.schedule_call(self._draw_duration(self._on), self._toggle)

    def next_packet(self) -> Optional[Packet]:
        if not self._on:
            return None
        self.packets_offered += 1
        return (self.destination, self.payload_bytes)

    def notify_sent(self, frame: Frame) -> None:
        self.packets_sent += 1

    @property
    def is_on(self) -> bool:
        return self._on
