"""Radio model: carrier sense, transmission, and frame reception.

Each node owns one :class:`Radio`.  The radio keeps track of every
transmission currently arriving at it (with its received power), which gives
it the two capabilities the MAC needs:

* **clear channel assessment (CCA)** -- the total in-band power compared to a
  configurable threshold (``cca_threshold_dbm``); setting the threshold to
  ``None`` disables carrier sense entirely, which is how the Section 4
  "concurrency" runs were taken;
* **reception** -- the radio locks onto the first detectable frame that
  starts while it is unlocked and not transmitting, accumulates the worst-case
  interference seen during the frame, and asks the :class:`ReceptionModel`
  for a verdict when the frame ends.

The total sensed and interfering powers are maintained *incrementally* (one
add per frame start, one subtract per frame end) rather than re-summed on
every CCA query, so carrier sense stays O(1) no matter how many frames
overlap.  Incremental float sums drift, so the radio re-derives both
accumulators exactly from the per-frame dicts whenever the channel empties
and, as a backstop, every ``RESYNC_INTERVAL`` mutations.

Under the medium's neighbourhood pruning the radio only receives per-frame
notifications for transmissions above the detectability floor; the summed
power of everything below it arrives through the medium's vectorized active
sub-floor array (``Medium.subfloor_noise_mw``), which the radio folds into
every CCA and SINR computation so totals match the unpruned path.

Hot-path layout: the class uses ``__slots__``, the medium hands each
notification the link's received power in *both* milliwatts and dBm (the dBm
value comes from a table precomputed at finalisation, so the per-frame path
never converts units), and the remaining dynamic dB conversions (SINR at
decode time, CCA verdicts) go through :func:`_lin_to_db_scalar`, a lean
scalar equivalent of :func:`repro.units.linear_to_db` that skips the array
coercion and errstate machinery while producing bit-identical values for
positive inputs.

State-change notifications (channel busy/idle, frame received, transmission
finished) are delivered to the owning MAC through callback attributes, which
the MAC sets when it attaches.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

import numpy as np

from .engine import Simulator
from .frames import Frame
from .medium import Medium, Transmission
from .phy import ReceptionModel, ReceptionOutcome

__all__ = ["Radio", "RadioStats", "RESYNC_INTERVAL"]

#: Mutations (frame starts + ends) between exact accumulator resyncs.
RESYNC_INTERVAL: int = 1024

_np_log10 = np.log10


def _lin_to_db_scalar(value_mw: float) -> float:
    """``float(linear_to_db(x))`` for strictly positive scalars, minus the
    array/errstate overhead (verified bit-identical for positive inputs)."""
    return 10.0 * float(_np_log10(value_mw))


def _default_rng(node_id: Hashable) -> np.random.Generator:
    """Deterministic fallback generator, seeded from the node id.

    Callers that care about the global random stream (the scenario layer, the
    network builder) pass an ``rng`` seeded from the scenario seed; a bare
    ``Radio(...)`` must still be reproducible run-to-run, so the fallback
    seeds from a stable hash of the node id instead of OS entropy.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=zlib.crc32(repr(node_id).encode("utf-8")))
    )


@dataclass(slots=True)
class RadioStats:
    """Low-level radio counters.

    Under a pruning medium, ``frames_missed_while_busy`` and the busy
    fraction derived from ``incoming_count`` only see above-floor frames.
    """

    frames_transmitted: int = 0
    tx_airtime_s: float = 0.0
    frames_decoded: int = 0
    frames_failed: int = 0
    frames_missed_while_busy: int = 0
    receptions_aborted_by_tx: int = 0


class Radio:
    """A half-duplex radio attached to the shared medium."""

    __slots__ = (
        "node_id",
        "sim",
        "medium",
        "reception",
        "_slot",
        "_cca_threshold_dbm",
        "cca_noise_db",
        "rng",
        "stats",
        "_noise_floor_mw",
        "_incoming_power_mw",
        "_incoming_cca_power_mw",
        "_incoming_tx",
        "_rx_sum_mw",
        "_cca_sum_mw",
        "_mutations_since_resync",
        "_transmitting",
        "_locked",
        "_locked_power_mw",
        "_locked_power_dbm",
        "_locked_max_interference_local_mw",
        "on_channel_busy",
        "on_channel_idle",
        "on_frame_received",
        "on_transmit_complete",
        "_was_busy",
        "_busy_accum_s",
        "_busy_since",
    )

    def __init__(
        self,
        node_id: Hashable,
        sim: Simulator,
        medium: Medium,
        reception: Optional[ReceptionModel] = None,
        cca_threshold_dbm: Optional[float] = -82.0,
        cca_noise_db: float = 2.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.medium = medium
        self.reception = reception if reception is not None else ReceptionModel()
        #: Index into the medium's vectorized per-radio state; assigned when
        #: the medium finalises the topology.
        self._slot: Optional[int] = None
        self.cca_threshold_dbm = cca_threshold_dbm
        # Per-frame measurement noise on the sensed power.  Real clear-channel
        # assessment is a noisy estimate, which is what makes marginal senders
        # "flutter" between deferring and transmitting -- a behaviour the paper
        # observes in its long-range experiments (Section 4.2).
        self.cca_noise_db = cca_noise_db
        self.rng = rng if rng is not None else _default_rng(node_id)
        self.stats = RadioStats()
        # The channel noise floor is immutable over a run; cache the linear
        # value so CCA queries avoid a dB conversion per call.
        self._noise_floor_mw = float(medium.noise_floor_mw)

        self._incoming_power_mw: Dict[int, float] = {}
        self._incoming_cca_power_mw: Dict[int, float] = {}
        self._incoming_tx: Dict[int, Transmission] = {}
        # Incremental accumulators over the two dicts above.
        self._rx_sum_mw = 0.0
        self._cca_sum_mw = 0.0
        self._mutations_since_resync = 0
        self._transmitting: Optional[Transmission] = None
        self._locked: Optional[Transmission] = None
        self._locked_power_mw: float = 0.0
        self._locked_power_dbm: float = -np.inf
        # Holds the locked frame's worst-case interference until the medium
        # finalises and hands out a slot (standalone radios never get one).
        self._locked_max_interference_local_mw: float = 0.0

        # Callbacks wired up by the MAC.
        self.on_channel_busy: Callable[[], None] = lambda: None
        self.on_channel_idle: Callable[[], None] = lambda: None
        self.on_frame_received: Callable[[ReceptionOutcome], None] = lambda outcome: None
        self.on_transmit_complete: Callable[[Frame], None] = lambda frame: None

        self._was_busy = False
        # Deterministic busy-time ledger, maintained on the busy/idle
        # transitions the radio already detects.  Observation probes read it
        # to report sensed-busy fractions without polling the channel.
        self._busy_accum_s = 0.0
        self._busy_since = 0.0

    # -- medium wiring -------------------------------------------------------------

    def _attach_slot(self, slot: int) -> None:
        """Called by the medium's finalize(): bind this radio to a state slot."""
        self._slot = slot
        self.medium._above_sum_mw[slot] = self._rx_sum_mw
        self.medium._locked_mask[slot] = self._locked is not None
        self.medium._locked_power_mw[slot] = self._locked_power_mw
        self.medium._cca_live_mw[slot] = self._cca_sum_mw
        self.medium._cca_threshold_mw[slot] = self._cca_threshold_mw()
        self.medium._busy_mirror[slot] = self._was_busy
        if self._locked is not None:
            self.medium._locked_max_interference_mw[slot] = (
                self._locked_max_interference_local_mw
            )

    def _subfloor_mw(self) -> float:
        """Active power from senders pruned out of per-frame notifications."""
        if self._slot is None:
            return 0.0
        return self.medium.subfloor_noise_mw(self._slot)

    @property
    def subfloor_noise_mw(self) -> float:
        """Public view of the pruned-sender power folded into this radio's noise."""
        return self._subfloor_mw()

    # -- carrier sense ------------------------------------------------------------

    @property
    def cca_threshold_dbm(self) -> Optional[float]:
        """CCA busy threshold (dBm); ``None`` disables carrier sense.

        A property so that mid-run threshold changes (tuned/adaptive CCA
        experiments) also refresh the medium's linear-threshold mirror used
        by the vectorized sub-floor busy-edge check.
        """
        return self._cca_threshold_dbm

    @cca_threshold_dbm.setter
    def cca_threshold_dbm(self, value: Optional[float]) -> None:
        self._cca_threshold_dbm = value
        if self._slot is not None:
            self.medium._cca_threshold_mw[self._slot] = self._cca_threshold_mw()

    def _cca_threshold_mw(self) -> float:
        """Linear threshold for the medium's mirror (inf: carrier sense off)."""
        if self._cca_threshold_dbm is None:
            return np.inf
        return float(10.0 ** (self._cca_threshold_dbm / 10.0))

    @property
    def carrier_sense_enabled(self) -> bool:
        return self._cca_threshold_dbm is not None

    @property
    def incoming_count(self) -> int:
        return len(self._incoming_power_mw)

    def sensed_power_mw(self) -> float:
        """Total power the CCA circuit estimates (includes measurement noise)."""
        return self._cca_sum_mw + self._subfloor_mw() + self._noise_floor_mw

    def sensed_power_dbm(self) -> float:
        return _lin_to_db_scalar(self.sensed_power_mw())

    def resync_power_accumulators(self) -> None:
        """Re-derive the incremental power sums exactly from the frame dicts."""
        self._rx_sum_mw = sum(self._incoming_power_mw.values())
        self._cca_sum_mw = sum(self._incoming_cca_power_mw.values())
        self._mutations_since_resync = 0
        if self._slot is not None:
            self.medium._above_sum_mw[self._slot] = self._rx_sum_mw
            self.medium._cca_live_mw[self._slot] = self._cca_sum_mw

    def _note_mutation(self) -> None:
        if not self._incoming_power_mw:
            # An empty channel is the cheapest exact state: reset outright so
            # drift can never outlive a quiet moment.
            self._rx_sum_mw = 0.0
            self._cca_sum_mw = 0.0
            self._mutations_since_resync = 0
            if self._slot is not None:
                self.medium._above_sum_mw[self._slot] = 0.0
                self.medium._cca_live_mw[self._slot] = 0.0
            return
        if self._slot is not None:
            self.medium._above_sum_mw[self._slot] = self._rx_sum_mw
            self.medium._cca_live_mw[self._slot] = self._cca_sum_mw
        self._mutations_since_resync += 1
        if self._mutations_since_resync >= RESYNC_INTERVAL:
            self.resync_power_accumulators()

    def channel_busy(self) -> bool:
        """CCA verdict: busy when sensed power exceeds the threshold.

        With carrier sense disabled the channel always appears idle, and a
        radio never considers the channel busy because of its *own*
        transmission (the MAC already knows when it is transmitting).
        """
        if self._cca_threshold_dbm is None:
            return False
        if not self._incoming_cca_power_mw and self._subfloor_mw() == 0.0:
            return False
        return self.sensed_power_dbm() > self._cca_threshold_dbm

    def _update_busy_state(self) -> None:
        busy = self.channel_busy()
        if self._slot is not None:
            self.medium._busy_mirror[self._slot] = busy
        if busy != self._was_busy:
            self._was_busy = busy
            if busy:
                self._busy_since = self.sim.now
                self.on_channel_busy()
            else:
                self._busy_accum_s += self.sim.now - self._busy_since
                self.on_channel_idle()

    def sensed_busy_time_s(self, now: float) -> float:
        """Total time the CCA circuit has reported busy, up to ``now``.

        ``now`` must be the caller's current simulation time; an in-progress
        busy period is counted up to it.  The ledger only advances on the
        busy/idle edges the radio already evaluates, so between frame edges
        (e.g. after a mid-run threshold change) it reflects the last verdict
        -- exactly what the MAC itself believes.
        """
        if self._was_busy:
            return self._busy_accum_s + (now - self._busy_since)
        return self._busy_accum_s

    # -- transmission ---------------------------------------------------------------

    @property
    def is_transmitting(self) -> bool:
        return self._transmitting is not None

    def transmit(self, frame: Frame) -> Transmission:
        """Put a frame on the air.  Aborts any reception in progress."""
        if self._transmitting is not None:
            raise RuntimeError(f"radio {self.node_id!r} is already transmitting")
        if self._locked is not None:
            # Half-duplex: transmitting destroys the frame being received.
            self.stats.receptions_aborted_by_tx += 1
            self._unlock()
        tx = self.medium.start_transmission(self.node_id, frame)
        self._transmitting = tx
        self.stats.frames_transmitted += 1
        self.stats.tx_airtime_s += frame.airtime_s
        return tx

    def transmit_finished(self, tx: Transmission) -> None:
        """Called by the medium when this radio's own transmission ends."""
        if self._transmitting is not tx:
            return
        self._transmitting = None
        self.on_transmit_complete(tx.frame)

    # -- reception ------------------------------------------------------------------

    def _lock_onto(self, tx: Transmission, power_mw: float, power_dbm: Optional[float] = None) -> None:
        self._locked = tx
        self._locked_power_mw = power_mw
        self._locked_power_dbm = (
            power_dbm if power_dbm is not None else _lin_to_db_scalar(power_mw)
        )
        interference = self._total_interference_excluding(tx.tx_id)
        if self._slot is None:
            self._locked_max_interference_local_mw = interference
            return
        medium = self.medium
        medium._locked_mask[self._slot] = True
        medium._locked_power_mw[self._slot] = power_mw
        medium._locked_max_interference_mw[self._slot] = interference

    def _unlock(self) -> None:
        self._locked = None
        if self._slot is not None:
            self.medium._locked_mask[self._slot] = False

    def _locked_max_interference(self) -> float:
        if self._slot is None:
            return self._locked_max_interference_local_mw
        return float(self.medium._locked_max_interference_mw[self._slot])

    def _raise_locked_max_interference(self, interference_mw: float) -> None:
        if self._slot is None:
            self._locked_max_interference_local_mw = max(
                self._locked_max_interference_local_mw, interference_mw
            )
        else:
            slot = self._slot
            self.medium._locked_max_interference_mw[slot] = max(
                self.medium._locked_max_interference_mw[slot], interference_mw
            )

    def incoming_started(
        self, tx: Transmission, power_mw: float, power_dbm: Optional[float] = None
    ) -> None:
        """Called by the medium when a (detectable) transmission begins.

        ``power_dbm`` is the same received power in dBm; a finalised medium
        passes it from its precomputed per-link table, while direct callers
        (tests, unfinalised media) may omit it.
        """
        if power_dbm is None:
            power_dbm = _lin_to_db_scalar(power_mw)
        tx_id = tx.tx_id
        self._incoming_power_mw[tx_id] = power_mw
        self._rx_sum_mw += power_mw
        self._incoming_tx[tx_id] = tx
        cca_power_mw = power_mw
        if self.cca_noise_db > 0:
            cca_power_mw *= float(10.0 ** (self.rng.normal(0.0, self.cca_noise_db) / 10.0))
        self._incoming_cca_power_mw[tx_id] = cca_power_mw
        self._cca_sum_mw += cca_power_mw
        self._note_mutation()

        if self._transmitting is not None:
            self.stats.frames_missed_while_busy += 1
        elif self._locked is None:
            reception = self.reception
            if power_dbm >= reception.sensitivity_dbm:
                interference_mw = self._total_interference_excluding(tx_id)
                sinr_db = _lin_to_db_scalar(power_mw / (self._noise_floor_mw + interference_mw))
                if sinr_db >= reception.preamble_snr_threshold_db:
                    self._lock_onto(tx, power_mw, power_dbm)
        else:
            reception = self.reception
            if (
                power_dbm >= reception.sensitivity_dbm
                and power_dbm >= self._locked_power_dbm + reception.capture_margin_db
            ):
                # Physical-layer capture: the stronger frame steals the lock
                # and the frame being received so far is lost.  The displaced
                # frame still gets a (failed) reception outcome so link-level
                # failure accounting matches the radio counters.
                displaced = self._locked
                displaced_interference_mw = max(
                    self._locked_max_interference(),
                    self._total_interference_excluding(displaced.tx_id),
                )
                displaced_sinr_db = _lin_to_db_scalar(
                    self._locked_power_mw
                    / (self._noise_floor_mw + displaced_interference_mw)
                )
                self.stats.frames_failed += 1
                self._lock_onto(tx, power_mw, power_dbm)
                self.on_frame_received(
                    ReceptionOutcome(
                        frame=displaced.frame,
                        success=False,
                        sinr_db=displaced_sinr_db,
                        success_probability=0.0,
                    )
                )
            else:
                self._raise_locked_max_interference(
                    self._total_interference_excluding(self._locked.tx_id)
                )
        self._update_busy_state()

    def incoming_ended(self, tx: Transmission) -> None:
        """Called by the medium when a (detectable) transmission ends."""
        tx_id = tx.tx_id
        power_mw = self._incoming_power_mw.pop(tx_id, None)
        if power_mw is not None:
            self._rx_sum_mw -= power_mw
        cca_power_mw = self._incoming_cca_power_mw.pop(tx_id, None)
        if cca_power_mw is not None:
            self._cca_sum_mw -= cca_power_mw
        self._incoming_tx.pop(tx_id, None)
        self._note_mutation()

        locked = self._locked
        if locked is not None and locked.tx_id == tx_id:
            sinr_linear = self._locked_power_mw / (
                self._noise_floor_mw + self._locked_max_interference()
            )
            sinr_db = _lin_to_db_scalar(sinr_linear)
            outcome = self.reception.decide(tx.frame, sinr_db, self.rng)
            if outcome.success:
                self.stats.frames_decoded += 1
            else:
                self.stats.frames_failed += 1
            self._unlock()
            self.on_frame_received(outcome)
        self._update_busy_state()

    def _total_interference_excluding(self, tx_id: int) -> float:
        """All interfering power except ``tx_id``: detectable plus sub-floor."""
        return (
            self._rx_sum_mw
            - self._incoming_power_mw.get(tx_id, 0.0)
            + self._subfloor_mw()
        )
