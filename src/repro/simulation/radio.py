"""Radio model: carrier sense, transmission, and frame reception.

Each node owns one :class:`Radio`.  The radio keeps track of every
transmission currently arriving at it (with its received power), which gives
it the two capabilities the MAC needs:

* **clear channel assessment (CCA)** -- the total in-band power compared to a
  configurable threshold (``cca_threshold_dbm``); setting the threshold to
  ``None`` disables carrier sense entirely, which is how the Section 4
  "concurrency" runs were taken;
* **reception** -- the radio locks onto the first detectable frame that
  starts while it is unlocked and not transmitting, accumulates the worst-case
  interference seen during the frame, and asks the :class:`ReceptionModel`
  for a verdict when the frame ends.

State-change notifications (channel busy/idle, frame received, transmission
finished) are delivered to the owning MAC through callback attributes, which
the MAC sets when it attaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

import numpy as np

from ..units import linear_to_db
from .engine import Simulator
from .frames import Frame
from .medium import Medium, Transmission
from .phy import ReceptionModel, ReceptionOutcome

__all__ = ["Radio", "RadioStats"]


@dataclass
class RadioStats:
    """Low-level radio counters."""

    frames_transmitted: int = 0
    tx_airtime_s: float = 0.0
    frames_decoded: int = 0
    frames_failed: int = 0
    frames_missed_while_busy: int = 0
    receptions_aborted_by_tx: int = 0


class Radio:
    """A half-duplex radio attached to the shared medium."""

    def __init__(
        self,
        node_id: Hashable,
        sim: Simulator,
        medium: Medium,
        reception: Optional[ReceptionModel] = None,
        cca_threshold_dbm: Optional[float] = -82.0,
        cca_noise_db: float = 2.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.medium = medium
        self.reception = reception if reception is not None else ReceptionModel()
        self.cca_threshold_dbm = cca_threshold_dbm
        # Per-frame measurement noise on the sensed power.  Real clear-channel
        # assessment is a noisy estimate, which is what makes marginal senders
        # "flutter" between deferring and transmitting -- a behaviour the paper
        # observes in its long-range experiments (Section 4.2).
        self.cca_noise_db = cca_noise_db
        self.rng = rng if rng is not None else np.random.default_rng()
        self.stats = RadioStats()

        self._incoming_power_mw: Dict[int, float] = {}
        self._incoming_cca_power_mw: Dict[int, float] = {}
        self._incoming_tx: Dict[int, Transmission] = {}
        self._transmitting: Optional[Transmission] = None
        self._locked: Optional[Transmission] = None
        self._locked_power_mw: float = 0.0
        self._locked_max_interference_mw: float = 0.0

        # Callbacks wired up by the MAC.
        self.on_channel_busy: Callable[[], None] = lambda: None
        self.on_channel_idle: Callable[[], None] = lambda: None
        self.on_frame_received: Callable[[ReceptionOutcome], None] = lambda outcome: None
        self.on_transmit_complete: Callable[[Frame], None] = lambda frame: None

        self._was_busy = False

    # -- carrier sense ------------------------------------------------------------

    @property
    def carrier_sense_enabled(self) -> bool:
        return self.cca_threshold_dbm is not None

    @property
    def incoming_count(self) -> int:
        return len(self._incoming_power_mw)

    def sensed_power_mw(self) -> float:
        """Total power the CCA circuit estimates (includes measurement noise)."""
        return sum(self._incoming_cca_power_mw.values()) + self.medium.noise_floor_mw

    def sensed_power_dbm(self) -> float:
        return float(linear_to_db(self.sensed_power_mw()))

    def channel_busy(self) -> bool:
        """CCA verdict: busy when sensed power exceeds the threshold.

        With carrier sense disabled the channel always appears idle, and a
        radio never considers the channel busy because of its *own*
        transmission (the MAC already knows when it is transmitting).
        """
        if not self.carrier_sense_enabled:
            return False
        if not self._incoming_cca_power_mw:
            return False
        return self.sensed_power_dbm() > self.cca_threshold_dbm

    def _update_busy_state(self) -> None:
        busy = self.channel_busy()
        if busy and not self._was_busy:
            self._was_busy = True
            self.on_channel_busy()
        elif not busy and self._was_busy:
            self._was_busy = False
            self.on_channel_idle()

    # -- transmission ---------------------------------------------------------------

    @property
    def is_transmitting(self) -> bool:
        return self._transmitting is not None

    def transmit(self, frame: Frame) -> Transmission:
        """Put a frame on the air.  Aborts any reception in progress."""
        if self._transmitting is not None:
            raise RuntimeError(f"radio {self.node_id!r} is already transmitting")
        if self._locked is not None:
            # Half-duplex: transmitting destroys the frame being received.
            self.stats.receptions_aborted_by_tx += 1
            self._locked = None
        tx = self.medium.start_transmission(self.node_id, frame)
        self._transmitting = tx
        self.stats.frames_transmitted += 1
        self.stats.tx_airtime_s += frame.airtime_s
        return tx

    def transmit_finished(self, tx: Transmission) -> None:
        """Called by the medium when this radio's own transmission ends."""
        if self._transmitting is not tx:
            return
        self._transmitting = None
        self.on_transmit_complete(tx.frame)

    # -- reception ------------------------------------------------------------------

    def _lock_onto(self, tx: Transmission, power_mw: float) -> None:
        self._locked = tx
        self._locked_power_mw = power_mw
        self._locked_max_interference_mw = self._interference_excluding(tx.tx_id)

    def incoming_started(self, tx: Transmission, power_mw: float) -> None:
        """Called by the medium when any other node's transmission begins."""
        self._incoming_power_mw[tx.tx_id] = power_mw
        self._incoming_tx[tx.tx_id] = tx
        cca_power_mw = power_mw
        if self.cca_noise_db > 0:
            cca_power_mw *= float(10.0 ** (self.rng.normal(0.0, self.cca_noise_db) / 10.0))
        self._incoming_cca_power_mw[tx.tx_id] = cca_power_mw

        power_dbm = float(linear_to_db(power_mw))
        interference_mw = self._interference_excluding(tx.tx_id)
        sinr_db = float(
            linear_to_db(power_mw / (self.medium.noise_floor_mw + interference_mw))
        )
        if self._transmitting is not None:
            self.stats.frames_missed_while_busy += 1
        elif self._locked is None:
            if self.reception.preamble_detectable(power_dbm, sinr_db):
                self._lock_onto(tx, power_mw)
        else:
            locked_power_dbm = float(linear_to_db(self._locked_power_mw))
            if self.reception.captures(power_dbm, locked_power_dbm):
                # Physical-layer capture: the stronger frame steals the lock
                # and the frame being received so far is lost.
                self.stats.frames_failed += 1
                self._lock_onto(tx, power_mw)
            else:
                self._locked_max_interference_mw = max(
                    self._locked_max_interference_mw,
                    self._interference_excluding(self._locked.tx_id),
                )
        self._update_busy_state()

    def incoming_ended(self, tx: Transmission) -> None:
        """Called by the medium when any other node's transmission ends."""
        self._incoming_power_mw.pop(tx.tx_id, None)
        self._incoming_cca_power_mw.pop(tx.tx_id, None)
        self._incoming_tx.pop(tx.tx_id, None)

        if self._locked is not None and self._locked.tx_id == tx.tx_id:
            sinr_linear = self._locked_power_mw / (
                self.medium.noise_floor_mw + self._locked_max_interference_mw
            )
            sinr_db = float(linear_to_db(sinr_linear))
            outcome = self.reception.decide(tx.frame, sinr_db, self.rng)
            if outcome.success:
                self.stats.frames_decoded += 1
            else:
                self.stats.frames_failed += 1
            self._locked = None
            self.on_frame_received(outcome)
        self._update_busy_state()

    def _interference_excluding(self, tx_id: int) -> float:
        return sum(p for key, p in self._incoming_power_mw.items() if key != tx_id)
