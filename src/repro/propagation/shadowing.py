"""Lognormal shadowing.

Shadowing models the place-to-place variation of received power caused by
obstacles and reflections.  Empirically the variation in dB is Gaussian
("lognormal shadowing"), with a standard deviation of 4-12 dB in typical
environments (paper Section 2 and appendix).  The analytical model draws
independent shadowing values for the three relevant links of a configuration
(sender->receiver, interferer->receiver, interferer->sender).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..units import db_to_linear, linear_to_db

__all__ = ["ShadowingModel", "combined_sigma_db"]


@dataclass
class ShadowingModel:
    """Sampler for i.i.d. lognormal shadowing values.

    Parameters
    ----------
    sigma_db:
        Standard deviation of the shadowing distribution in dB.  A value of
        zero turns the model into a deterministic pass-through (gain 1.0),
        which is how the "simplified model" of Section 3.3 is obtained.
    rng:
        NumPy random generator.  Supplying an explicit generator keeps the
        Monte-Carlo experiments reproducible.
    """

    sigma_db: float = 0.0
    # Deliberately unseeded exploratory default: every experiment and
    # scenario path injects a seeded generator.
    rng: np.random.Generator = field(default_factory=np.random.default_rng)  # simlint: disable=no-unseeded-rng

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")

    @property
    def is_deterministic(self) -> bool:
        """True when sigma is zero and sampling always yields unit gain."""
        return self.sigma_db == 0.0

    def sample_db(self, size: int | tuple[int, ...] | None = None) -> np.ndarray | float:
        """Draw shadowing value(s) in dB (zero-mean Gaussian)."""
        if self.sigma_db == 0.0:
            if size is None:
                return 0.0
            return np.zeros(size, dtype=float)
        return self.rng.normal(0.0, self.sigma_db, size=size)

    def sample_linear(self, size: int | tuple[int, ...] | None = None) -> np.ndarray | float:
        """Draw shadowing gain(s) as linear power multipliers."""
        return db_to_linear(self.sample_db(size))

    def mean_linear_gain(self) -> float:
        """Expected linear gain ``E[10^(X/10)]`` of the lognormal distribution.

        Because capacity is a concave function of linear SNR but shadowing is
        symmetric in dB, this mean exceeds 1; the paper leans on this fact when
        explaining why shadowing *raises* average concurrency capacity at long
        range ("you can't make a bad link worse than no link...").
        """
        sigma_nat = self.sigma_db * np.log(10.0) / 10.0
        return float(np.exp(0.5 * sigma_nat**2))

    def probability_above_db(self, threshold_db: float) -> float:
        """P(shadowing value in dB exceeds ``threshold_db``)."""
        if self.sigma_db == 0.0:
            return 1.0 if threshold_db < 0 else 0.0
        from scipy.stats import norm

        return float(norm.sf(threshold_db, scale=self.sigma_db))


def combined_sigma_db(*sigmas_db: float) -> float:
    """Standard deviation of a sum of independent Gaussian dB components.

    Section 3.4 combines the three shadowing dimensions affecting a sender's
    SNR estimate as ``sigma * sqrt(3)`` (about 14 dB for sigma = 8 dB); this is
    the general form for unequal components.
    """
    if any(s < 0 for s in sigmas_db):
        raise ValueError("sigma values must be non-negative")
    return float(np.sqrt(sum(s * s for s in sigmas_db)))
