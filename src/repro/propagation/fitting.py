"""Maximum-likelihood fitting of the path-loss / shadowing model.

The appendix (Figure 14) fits a combined power-law path loss + lognormal
shadowing model to measured testbed RSSI values by maximum likelihood,
"accounting for the invisibility of sub-threshold links": links whose received
power falls below the radio's detection threshold never produce a measurement,
so a naive least-squares fit is biased towards optimistic channels.  The
censored-likelihood estimator implemented here handles that.

Model
-----
For a link of distance ``d`` the received SNR in dB is

    y = y0 - 10 * alpha * log10(d / d0) + X,     X ~ Normal(0, sigma^2)

and the link is observed only if ``y >= detection_threshold_db``.  The fit
estimates ``(alpha, sigma, y0)`` by maximising the censored log-likelihood
over the observed links plus, optionally, the known-undetected links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize, stats

__all__ = ["PropagationFit", "fit_path_loss_shadowing", "predict_rssi_db"]


@dataclass(frozen=True)
class PropagationFit:
    """Result of a censored maximum-likelihood propagation fit."""

    alpha: float
    sigma_db: float
    rssi0_db: float
    reference_distance: float
    log_likelihood: float
    n_observed: int
    n_censored: int

    def predict_mean_db(self, distances) -> np.ndarray:
        """Mean RSSI/SNR (dB) predicted at the given distances."""
        return predict_rssi_db(distances, self.alpha, self.rssi0_db, self.reference_distance)

    def prediction_interval_db(self, distances, n_sigma: float = 1.0):
        """(low, high) bounds ``n_sigma`` standard deviations around the mean."""
        mean = self.predict_mean_db(distances)
        return mean - n_sigma * self.sigma_db, mean + n_sigma * self.sigma_db


def predict_rssi_db(distances, alpha: float, rssi0_db: float, reference_distance: float = 20.0):
    """Mean RSSI (dB) under the power-law model referenced at ``reference_distance``."""
    d = np.asarray(distances, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distances must be strictly positive")
    return rssi0_db - 10.0 * alpha * np.log10(d / reference_distance)


def fit_path_loss_shadowing(
    distances: Sequence[float],
    rssi_db: Sequence[float],
    detection_threshold_db: float | None = None,
    censored_distances: Sequence[float] | None = None,
    reference_distance: float = 20.0,
    initial_alpha: float = 3.0,
    initial_sigma_db: float = 8.0,
) -> PropagationFit:
    """Fit ``(alpha, sigma, rssi0)`` to observed link measurements.

    Parameters
    ----------
    distances, rssi_db:
        Distances and measured RSSI/SNR (dB) of the *observed* links.
    detection_threshold_db:
        Minimum RSSI at which a link is detectable.  When provided, the
        likelihood of each observed point is truncated at the threshold, and
        any ``censored_distances`` contribute ``P(rssi < threshold)`` terms.
    censored_distances:
        Distances of links that were probed but produced no measurements
        (known to be below the detection threshold).
    reference_distance:
        Distance at which ``rssi0_db`` is referenced (the paper uses R = 20).

    Returns
    -------
    PropagationFit
        The maximum-likelihood parameters and fit metadata.
    """
    d_obs = np.asarray(distances, dtype=float)
    y_obs = np.asarray(rssi_db, dtype=float)
    if d_obs.shape != y_obs.shape:
        raise ValueError("distances and rssi_db must have the same shape")
    if d_obs.size < 3:
        raise ValueError("need at least three observed links to fit three parameters")
    if np.any(d_obs <= 0):
        raise ValueError("distances must be strictly positive")
    d_cens = (
        np.asarray(censored_distances, dtype=float)
        if censored_distances is not None
        else np.empty(0)
    )
    if d_cens.size and detection_threshold_db is None:
        raise ValueError("censored distances require a detection threshold")

    log_d = np.log10(d_obs / reference_distance)
    log_d_cens = np.log10(d_cens / reference_distance) if d_cens.size else np.empty(0)

    def negative_log_likelihood(params: np.ndarray) -> float:
        alpha, log_sigma, rssi0 = params
        sigma = np.exp(log_sigma)
        mean_obs = rssi0 - 10.0 * alpha * log_d
        z = (y_obs - mean_obs) / sigma
        ll = np.sum(stats.norm.logpdf(z) - np.log(sigma))
        if detection_threshold_db is not None:
            if d_cens.size:
                # Tobit-style censored likelihood: every probed-but-undetected
                # link contributes P(rssi < threshold) at its distance.
                mean_cens = rssi0 - 10.0 * alpha * log_d_cens
                z_cens = (detection_threshold_db - mean_cens) / sigma
                ll += np.sum(stats.norm.logcdf(z_cens))
            else:
                # Only the detected sample is known: use the truncated
                # likelihood (condition each observation on being detectable).
                z_thr = (detection_threshold_db - mean_obs) / sigma
                ll -= np.sum(stats.norm.logsf(z_thr))
        return -float(ll)

    # Least-squares starting point for rssi0.
    slope, intercept = np.polyfit(log_d, y_obs, 1)
    x0 = np.array([max(-slope / 10.0, 1.0), np.log(initial_sigma_db), intercept])
    if not np.isfinite(x0).all():
        x0 = np.array([initial_alpha, np.log(initial_sigma_db), float(np.mean(y_obs))])

    result = optimize.minimize(
        negative_log_likelihood,
        x0,
        method="Nelder-Mead",
        options={"maxiter": 20000, "xatol": 1e-6, "fatol": 1e-8},
    )
    alpha_hat, log_sigma_hat, rssi0_hat = result.x
    return PropagationFit(
        alpha=float(alpha_hat),
        sigma_db=float(np.exp(log_sigma_hat)),
        rssi0_db=float(rssi0_hat),
        reference_distance=float(reference_distance),
        log_likelihood=-float(result.fun),
        n_observed=int(d_obs.size),
        n_censored=int(d_cens.size),
    )
