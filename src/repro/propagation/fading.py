"""Small-scale (multipath) fading models: Rayleigh and Rician.

The paper mostly averages fading away because wideband (OFDM / DSSS) radios
see only "a few dB" of residual variation, but the underlying distributions
are implemented here both for completeness and so that the packet simulator
can optionally apply narrowband-style fading to demonstrate the contrast the
related-work section draws with older fixed-rate, narrowband hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RayleighFading", "RicianFading", "effective_wideband_sigma_db"]


@dataclass
class RayleighFading:
    """Rayleigh fading: power gain is exponentially distributed with mean 1."""

    # Deliberately unseeded exploratory default: every experiment and
    # scenario path injects a seeded generator.
    rng: np.random.Generator = field(default_factory=np.random.default_rng)  # simlint: disable=no-unseeded-rng

    def sample_power_gain(self, size: int | tuple[int, ...] | None = None):
        """Draw linear power gain(s); mean is 1 so path loss is unaffected."""
        return self.rng.exponential(1.0, size=size)

    def sample_amplitude(self, size: int | tuple[int, ...] | None = None):
        """Draw amplitude gain(s), i.e. the square root of the power gain."""
        return np.sqrt(self.sample_power_gain(size))

    def outage_probability(self, margin_db: float) -> float:
        """Probability that the faded power falls more than ``margin_db`` below mean."""
        threshold = 10.0 ** (-margin_db / 10.0)
        return float(1.0 - np.exp(-threshold))


@dataclass
class RicianFading:
    """Rician fading with K-factor ``k`` (ratio of line-of-sight to scattered power)."""

    k_factor: float = 3.0
    # Deliberately unseeded exploratory default: every experiment and
    # scenario path injects a seeded generator.
    rng: np.random.Generator = field(default_factory=np.random.default_rng)  # simlint: disable=no-unseeded-rng

    def __post_init__(self) -> None:
        if self.k_factor < 0:
            raise ValueError("Rician K-factor must be non-negative")

    def sample_power_gain(self, size: int | tuple[int, ...] | None = None):
        """Draw linear power gain(s) with unit mean.

        The complex channel is modelled as a fixed line-of-sight component plus
        a circular Gaussian scatter component; ``k = 0`` degenerates to
        Rayleigh fading.
        """
        k = self.k_factor
        los = np.sqrt(k / (k + 1.0))
        scatter_scale = np.sqrt(1.0 / (2.0 * (k + 1.0)))
        shape = size if size is not None else ()
        real = self.rng.normal(los, scatter_scale, size=shape)
        imag = self.rng.normal(0.0, scatter_scale, size=shape)
        gain = real**2 + imag**2
        if size is None:
            return float(gain)
        return gain


def effective_wideband_sigma_db(num_independent_taps: int) -> float:
    """Residual fading variability (dB std-dev) after wideband averaging.

    A wideband OFDM or RAKE receiver effectively averages power over roughly
    ``num_independent_taps`` independently fading frequency bins / echoes.  The
    averaged power is Gamma(n, 1/n) distributed; for even modest ``n`` the
    standard deviation in dB falls to a few dB, which is why the paper folds
    fading into shadowing.  This helper quantifies that statement.
    """
    if num_independent_taps < 1:
        raise ValueError("need at least one tap")
    n = int(num_independent_taps)
    samples_mean = 1.0
    variance = 1.0 / n
    # Delta-method approximation for the std-dev of 10*log10(X) when X has
    # mean 1 and the given variance (adequate for n >= 2).
    sigma_db = 10.0 / np.log(10.0) * np.sqrt(variance) / samples_mean
    return float(sigma_db)
