"""Radio propagation substrate: path loss, shadowing, fading, and fitting.

This package implements the "path loss - shadowing - fading" model of
Section 2 / the appendix of the paper, plus the auxiliary models (two-ray
ground reflection, knife-edge diffraction) discussed there, and the censored
maximum-likelihood estimator used to fit the model to testbed RSSI data
(Figure 14).
"""

from .channel import ChannelModel, LinkBudget, NormalizedChannel
from .diffraction import fresnel_v, knife_edge_loss_db, knife_edge_loss_db_exact
from .fading import RayleighFading, RicianFading, effective_wideband_sigma_db
from .fitting import PropagationFit, fit_path_loss_shadowing, predict_rssi_db
from .pathloss import (
    LogDistancePathLoss,
    free_space_path_loss_db,
    path_gain,
    path_loss_db,
)
from .shadowing import ShadowingModel, combined_sigma_db
from .tworay import TwoRayGroundModel

__all__ = [
    "ChannelModel",
    "LinkBudget",
    "NormalizedChannel",
    "LogDistancePathLoss",
    "free_space_path_loss_db",
    "path_gain",
    "path_loss_db",
    "ShadowingModel",
    "combined_sigma_db",
    "RayleighFading",
    "RicianFading",
    "effective_wideband_sigma_db",
    "TwoRayGroundModel",
    "fresnel_v",
    "knife_edge_loss_db",
    "knife_edge_loss_db_exact",
    "PropagationFit",
    "fit_path_loss_shadowing",
    "predict_rssi_db",
]
