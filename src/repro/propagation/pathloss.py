"""Power-law path loss models.

The paper's analytical model (Section 2 and the appendix) uses the standard
log-distance path-loss model: received power decays as ``d ** -alpha`` with
``alpha`` typically between 2 (free space) and 4 (heavily obstructed indoor /
two-ray ground).  Two interfaces are provided:

* the *normalised* form used by the analytical carrier-sense model, where the
  transmit power at unit distance has been folded into the noise floor and the
  gain is simply ``r ** -alpha``; and
* a *physical* form in dB, referenced to a path loss ``PL(d0)`` at a reference
  distance, used by the packet simulator and the testbed substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..units import linear_to_db

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "path_gain",
    "path_loss_db",
    "free_space_path_loss_db",
    "LogDistancePathLoss",
]


def path_gain(distance: ArrayLike, alpha: float) -> ArrayLike:
    """Normalised path gain ``r ** -alpha`` used by the analytical model.

    Parameters
    ----------
    distance:
        Separation in the paper's normalised distance units.  Must be > 0
        (the model's singularity at r = 0 is "of little practical
        significance"; callers are expected to avoid it).
    alpha:
        Path-loss exponent.
    """
    if alpha <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {alpha}")
    d = np.asarray(distance, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distance must be strictly positive")
    result = np.power(d, -alpha)
    if np.ndim(distance) == 0:
        return float(result)
    return result


def path_loss_db(distance: ArrayLike, alpha: float) -> ArrayLike:
    """Path loss in dB relative to unit distance: ``10 * alpha * log10(d)``."""
    if alpha <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {alpha}")
    d = np.asarray(distance, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distance must be strictly positive")
    result = 10.0 * alpha * np.log10(d)
    if np.ndim(distance) == 0:
        return float(result)
    return result


def free_space_path_loss_db(distance_m: ArrayLike, frequency_hz: float) -> ArrayLike:
    """Free-space path loss (Friis) in dB for a physical distance in metres."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    d = np.asarray(distance_m, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distance must be strictly positive")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    result = 20.0 * np.log10(4.0 * math.pi * d / wavelength)
    if np.ndim(distance_m) == 0:
        return float(result)
    return result


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path-loss model referenced to a physical distance.

    ``PL(d) = PL(d0) + 10 * alpha * log10(d / d0)`` in dB.

    The reference loss defaults to free-space loss at ``d0`` for the given
    carrier frequency, which is the conventional choice for indoor models such
    as ITU-R P.1238.
    """

    alpha: float
    frequency_hz: float
    reference_distance_m: float = 1.0
    reference_loss_db: float | None = None

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("path-loss exponent must be positive")
        if self.reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if self.reference_loss_db is None:
            ref = free_space_path_loss_db(self.reference_distance_m, self.frequency_hz)
            object.__setattr__(self, "reference_loss_db", float(ref))

    def loss_db(self, distance_m: ArrayLike) -> ArrayLike:
        """Total path loss in dB at the given physical distance(s)."""
        d = np.asarray(distance_m, dtype=float)
        if np.any(d <= 0):
            raise ValueError("distance must be strictly positive")
        result = self.reference_loss_db + 10.0 * self.alpha * np.log10(
            d / self.reference_distance_m
        )
        if np.ndim(distance_m) == 0:
            return float(result)
        return result

    def received_power_dbm(self, tx_power_dbm: float, distance_m: ArrayLike) -> ArrayLike:
        """Received power in dBm given a transmit power and distance."""
        loss = self.loss_db(distance_m)
        return tx_power_dbm - loss

    def gain_linear(self, distance_m: ArrayLike) -> ArrayLike:
        """Linear channel power gain (always <= 1 for sensible parameters)."""
        loss = np.asarray(self.loss_db(distance_m), dtype=float)
        result = np.power(10.0, -loss / 10.0)
        if np.ndim(distance_m) == 0:
            return float(result)
        return result

    def distance_for_loss(self, loss_db: float) -> float:
        """Invert the model: distance (m) at which the given loss occurs."""
        exponent = (loss_db - self.reference_loss_db) / (10.0 * self.alpha)
        return self.reference_distance_m * 10.0 ** exponent
