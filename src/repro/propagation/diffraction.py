"""Knife-edge diffraction.

Section 3.4 argues that even an opaque barrier cannot hide one sender from
another because diffraction around the edge still delivers a usable carrier
sense signal; the paper quotes "around 30 dB" of knife-edge diffraction loss at
2.4 GHz with a 5 m distance to the barrier.  This module implements the
standard single knife-edge model (Fresnel-Kirchhoff parameter ``v`` plus the
ITU-R P.526 approximation for the loss) so that claim can be checked
numerically and used in the synthetic testbed's obstacle model.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
from scipy.special import fresnel

from ..constants import SPEED_OF_LIGHT

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "fresnel_v",
    "knife_edge_loss_db",
    "knife_edge_loss_db_exact",
]


def fresnel_v(
    obstacle_height_m: ArrayLike,
    dist_tx_to_obstacle_m: float,
    dist_obstacle_to_rx_m: float,
    frequency_hz: float,
) -> ArrayLike:
    """Fresnel-Kirchhoff diffraction parameter ``v``.

    ``obstacle_height_m`` is the height of the knife edge above the direct
    line between transmitter and receiver (positive means the path is
    blocked).
    """
    if dist_tx_to_obstacle_m <= 0 or dist_obstacle_to_rx_m <= 0:
        raise ValueError("distances to the obstacle must be positive")
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    h = np.asarray(obstacle_height_m, dtype=float)
    d1, d2 = dist_tx_to_obstacle_m, dist_obstacle_to_rx_m
    v = h * math.sqrt(2.0 * (d1 + d2) / (wavelength * d1 * d2))
    if np.ndim(obstacle_height_m) == 0:
        return float(v)
    return v


def knife_edge_loss_db(v: ArrayLike) -> ArrayLike:
    """ITU-R P.526 approximation of knife-edge diffraction loss (dB).

    ``J(v) = 6.9 + 20 log10(sqrt((v - 0.1)^2 + 1) + v - 0.1)`` for
    ``v > -0.78`` and 0 dB otherwise.  Loss is returned as a positive number.
    """
    varr = np.asarray(v, dtype=float)
    shifted = varr - 0.1
    loss = 6.9 + 20.0 * np.log10(np.sqrt(shifted**2 + 1.0) + shifted)
    loss = np.where(varr > -0.78, loss, 0.0)
    loss = np.maximum(loss, 0.0)
    if np.ndim(v) == 0:
        return float(loss)
    return loss


def knife_edge_loss_db_exact(v: ArrayLike) -> ArrayLike:
    """Exact knife-edge loss from the complex Fresnel integral (dB)."""
    varr = np.asarray(v, dtype=float)
    s, c = fresnel(varr)
    # Field relative to free space: F(v) = (1 + j)/2 * integral_v^inf e^{-j pi t^2 / 2} dt
    real = 0.5 - c
    imag = 0.5 - s
    magnitude = np.sqrt((real**2 + imag**2) / 2.0)
    with np.errstate(divide="ignore"):
        loss = -20.0 * np.log10(magnitude)
    loss = np.maximum(loss, 0.0)
    if np.ndim(v) == 0:
        return float(loss)
    return loss
