"""Composite path-loss + shadowing + fading channel model.

This is the "basic path loss - shadowing - fading model" of Section 2, in a
form usable both by the analytical carrier-sense model (normalised units, fold
transmit power into the noise floor) and by the packet simulator / synthetic
testbed (physical units: dBm, metres).

A :class:`ChannelModel` owns one shadowing value per ordered (or unordered)
node pair so that repeated queries between the same pair are consistent over a
simulation run, which is how real static shadowing behaves and what the
testbed experiments require (a link's quality should not change between the
probing phase and the measurement phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Sequence, Tuple, Union

import numpy as np

from ..constants import (
    DEFAULT_NOISE_FLOOR_DBM,
    DEFAULT_TX_POWER_DBM,
    FREQ_2_4_GHZ,
)
from ..units import db_to_linear
from .fading import RayleighFading
from .pathloss import LogDistancePathLoss, path_gain
from .shadowing import ShadowingModel

__all__ = ["NormalizedChannel", "ChannelModel", "LinkBudget"]

PairKey = Tuple[Hashable, Hashable]


@dataclass(frozen=True)
class LinkBudget:
    """Complete accounting of a single link power calculation (dB/dBm)."""

    tx_power_dbm: float
    path_loss_db: float
    shadowing_db: float
    fading_db: float
    rx_power_dbm: float
    noise_floor_dbm: float

    @property
    def snr_db(self) -> float:
        return self.rx_power_dbm - self.noise_floor_dbm


@dataclass
class NormalizedChannel:
    """Channel in the paper's normalised units (P0 folded into the noise term).

    Received power from a node at distance ``r`` is ``r ** -alpha * L`` where
    ``L`` is a lognormal shadowing gain; the noise floor is ``N = N0 / P0``.
    """

    alpha: float = 3.0
    sigma_db: float = 0.0
    noise: float = db_to_linear(-65.0)
    # Deliberately unseeded exploratory default: every experiment and
    # scenario path injects a seeded generator.
    rng: np.random.Generator = field(default_factory=np.random.default_rng)  # simlint: disable=no-unseeded-rng

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("path-loss exponent must be positive")
        if self.sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")
        if self.noise <= 0:
            raise ValueError("noise must be positive")
        self._shadowing = ShadowingModel(self.sigma_db, rng=self.rng)

    def received_power(self, distance: Union[float, np.ndarray], shadowing_gain=None):
        """Normalised received power at the given distance(s).

        ``shadowing_gain`` may be supplied explicitly (e.g. a pre-drawn Monte
        Carlo sample); otherwise a fresh value is drawn when sigma > 0.
        """
        gain = path_gain(distance, self.alpha)
        if shadowing_gain is None:
            size = None if np.ndim(distance) == 0 else np.shape(distance)
            shadowing_gain = self._shadowing.sample_linear(size)
        return gain * shadowing_gain

    def snr(self, distance, shadowing_gain=None, interference: float = 0.0):
        """Signal-to-interference-plus-noise ratio at the given distance(s)."""
        return self.received_power(distance, shadowing_gain) / (self.noise + interference)

    def draw_shadowing(self, size=None):
        """Draw lognormal shadowing gain(s) from this channel's distribution."""
        return self._shadowing.sample_linear(size)


@dataclass
class ChannelModel:
    """Physical-unit channel used by the simulator and synthetic testbed.

    Combines log-distance path loss, per-pair static lognormal shadowing, and
    optional per-packet Rayleigh fading residue.  Shadowing values are drawn
    lazily per unordered node pair and cached, making links reciprocal (the
    paper's Figure 14 fit assumes symmetric channels).
    """

    path_loss: LogDistancePathLoss = field(
        default_factory=lambda: LogDistancePathLoss(alpha=3.5, frequency_hz=FREQ_2_4_GHZ)
    )
    sigma_db: float = 8.0
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM
    noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM
    fading_sigma_db: float = 0.0
    # Deliberately unseeded exploratory default: every experiment and
    # scenario path injects a seeded generator.
    rng: np.random.Generator = field(default_factory=np.random.default_rng)  # simlint: disable=no-unseeded-rng

    def __post_init__(self) -> None:
        if self.sigma_db < 0 or self.fading_sigma_db < 0:
            raise ValueError("sigma values must be non-negative")
        self._pair_shadowing_db: Dict[PairKey, float] = {}

    # -- shadowing bookkeeping -------------------------------------------------

    @staticmethod
    def _order_pair(a: Hashable, b: Hashable, repr_a: str, repr_b: str) -> PairKey:
        return (a, b) if repr_a <= repr_b else (b, a)

    def _pair_key(self, a: Hashable, b: Hashable) -> PairKey:
        return self._order_pair(a, b, repr(a), repr(b))

    def shadowing_db(self, a: Hashable, b: Hashable) -> float:
        """Static shadowing value (dB) for the unordered pair ``(a, b)``."""
        key = self._pair_key(a, b)
        if key not in self._pair_shadowing_db:
            if self.sigma_db == 0.0:
                self._pair_shadowing_db[key] = 0.0
            else:
                self._pair_shadowing_db[key] = float(self.rng.normal(0.0, self.sigma_db))
        return self._pair_shadowing_db[key]

    def set_shadowing_db(self, a: Hashable, b: Hashable, value_db: float) -> None:
        """Pin the shadowing value for a pair (used by tests and scenarios)."""
        self._pair_shadowing_db[self._pair_key(a, b)] = float(value_db)

    def shadowing_matrix(self, ids: Sequence[Hashable]) -> np.ndarray:
        """Symmetric per-pair shadowing matrix (dB) for the given node order.

        Values already cached (drawn lazily or pinned via
        :meth:`set_shadowing_db`) are reused verbatim; missing pairs are drawn
        in one batched call, in deterministic ``(i, j), i < j`` order, and
        cached so later per-pair queries agree with the matrix.
        """
        n = len(ids)
        matrix = np.zeros((n, n), dtype=float)
        if self.sigma_db == 0.0 and not self._pair_shadowing_db:
            return matrix
        if not self._pair_shadowing_db:
            # Cold start (the common scenario-run case): one batched draw for
            # all pairs, consumed in the same ``(i, j), i < j`` row-major
            # order as the incremental path below, assigned vectorized.
            iu, ju = np.triu_indices(n, k=1)
            draws = self.rng.normal(0.0, self.sigma_db, size=iu.size)
            matrix[iu, ju] = draws
            matrix[ju, iu] = draws
            reprs = [repr(node) for node in ids]
            for i, j, draw in zip(iu.tolist(), ju.tolist(), draws.tolist()):
                key = self._order_pair(ids[i], ids[j], reprs[i], reprs[j])
                self._pair_shadowing_db[key] = draw
            return matrix
        missing = []
        for i in range(n):
            for j in range(i + 1, n):
                key = self._pair_key(ids[i], ids[j])
                value = self._pair_shadowing_db.get(key)
                if value is None:
                    missing.append((i, j, key))
                else:
                    matrix[i, j] = matrix[j, i] = value
        if missing:
            if self.sigma_db > 0.0:
                draws = self.rng.normal(0.0, self.sigma_db, size=len(missing))
            else:
                draws = np.zeros(len(missing))
            for (i, j, key), draw in zip(missing, draws):
                value = float(draw)
                self._pair_shadowing_db[key] = value
                matrix[i, j] = matrix[j, i] = value
        return matrix

    def rx_power_matrix(
        self, ids: Sequence[Hashable], distance_m: np.ndarray
    ) -> np.ndarray:
        """Received power (dBm) for every ordered pair, in one vectorized pass.

        ``distance_m[i, j]`` is the (already clamped) distance from node
        ``ids[i]`` to node ``ids[j]``; the diagonal is ignored by callers but
        must still be strictly positive for the path-loss model.  The result
        composes path loss and per-pair shadowing exactly like
        :meth:`link_budget` (without fading), so matrix entries are
        bit-identical to per-pair ``rx_power_dbm`` queries.
        """
        distances = np.asarray(distance_m, dtype=float)
        if distances.shape != (len(ids), len(ids)):
            raise ValueError("distance matrix shape must match the node list")
        loss = np.asarray(self.path_loss.loss_db(distances), dtype=float)
        return self.tx_power_dbm - loss + self.shadowing_matrix(ids)

    # -- link budget -----------------------------------------------------------

    def link_budget(
        self,
        a: Hashable,
        b: Hashable,
        distance_m: float,
        include_fading: bool = False,
    ) -> LinkBudget:
        """Full link budget from node ``a`` to node ``b`` at the given distance."""
        if distance_m <= 0:
            raise ValueError("distance must be strictly positive")
        loss = float(self.path_loss.loss_db(distance_m))
        shadow = self.shadowing_db(a, b)
        fading = 0.0
        if include_fading and self.fading_sigma_db > 0:
            fading = float(self.rng.normal(0.0, self.fading_sigma_db))
        rx = self.tx_power_dbm - loss + shadow + fading
        return LinkBudget(
            tx_power_dbm=self.tx_power_dbm,
            path_loss_db=loss,
            shadowing_db=shadow,
            fading_db=fading,
            rx_power_dbm=rx,
            noise_floor_dbm=self.noise_floor_dbm,
        )

    def rx_power_dbm(self, a, b, distance_m: float, include_fading: bool = False) -> float:
        """Received power (dBm) from ``a`` at ``b``."""
        return self.link_budget(a, b, distance_m, include_fading).rx_power_dbm

    def rx_power_mw(self, a, b, distance_m: float, include_fading: bool = False) -> float:
        """Received power (milliwatts) from ``a`` at ``b``."""
        return float(10.0 ** (self.rx_power_dbm(a, b, distance_m, include_fading) / 10.0))

    @property
    def noise_floor_mw(self) -> float:
        """Noise floor expressed in milliwatts."""
        return float(10.0 ** (self.noise_floor_dbm / 10.0))
