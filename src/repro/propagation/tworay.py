"""Two-ray ground-reflection propagation model.

The appendix discusses the classic two-ray model -- direct path plus a
ground-reflected path with an approximately inverted phase -- as the textbook
origin of fourth-power distance decay.  The exact interference expression and
its large-distance approximation are both provided; the tests verify that the
exact model converges to the ``d ** -4`` law beyond the crossover distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..units import linear_to_db

ArrayLike = Union[float, np.ndarray]

__all__ = ["TwoRayGroundModel"]


@dataclass(frozen=True)
class TwoRayGroundModel:
    """Two-ray model over a flat, perfectly reflecting ground plane.

    Parameters
    ----------
    frequency_hz:
        Carrier frequency.
    tx_height_m, rx_height_m:
        Antenna heights above the ground plane.
    reflection_coefficient:
        Amplitude reflection coefficient of the ground; -1 models the ideal
        phase-inverting reflection assumed in the textbook derivation.
    """

    frequency_hz: float
    tx_height_m: float = 1.5
    rx_height_m: float = 1.5
    reflection_coefficient: float = -1.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.tx_height_m <= 0 or self.rx_height_m <= 0:
            raise ValueError("antenna heights must be positive")

    @property
    def wavelength_m(self) -> float:
        return SPEED_OF_LIGHT / self.frequency_hz

    @property
    def crossover_distance_m(self) -> float:
        """Distance beyond which the ``d ** -4`` approximation is accurate."""
        return 4.0 * math.pi * self.tx_height_m * self.rx_height_m / self.wavelength_m

    def gain_exact(self, distance_m: ArrayLike) -> ArrayLike:
        """Exact two-ray linear power gain (relative to isotropic antennas)."""
        d = np.asarray(distance_m, dtype=float)
        if np.any(d <= 0):
            raise ValueError("distance must be strictly positive")
        ht, hr = self.tx_height_m, self.rx_height_m
        d_direct = np.sqrt(d**2 + (ht - hr) ** 2)
        d_reflect = np.sqrt(d**2 + (ht + hr) ** 2)
        k = 2.0 * math.pi / self.wavelength_m
        lam = self.wavelength_m
        direct = (lam / (4.0 * math.pi * d_direct)) * np.exp(-1j * k * d_direct)
        reflected = (
            self.reflection_coefficient
            * (lam / (4.0 * math.pi * d_reflect))
            * np.exp(-1j * k * d_reflect)
        )
        gain = np.abs(direct + reflected) ** 2
        if np.ndim(distance_m) == 0:
            return float(gain)
        return gain

    def gain_far_field(self, distance_m: ArrayLike) -> ArrayLike:
        """Fourth-power-law approximation valid beyond the crossover distance."""
        d = np.asarray(distance_m, dtype=float)
        if np.any(d <= 0):
            raise ValueError("distance must be strictly positive")
        gain = (self.tx_height_m * self.rx_height_m) ** 2 / d**4
        if np.ndim(distance_m) == 0:
            return float(gain)
        return gain

    def loss_db_exact(self, distance_m: ArrayLike) -> ArrayLike:
        """Exact path loss in dB (positive numbers)."""
        return -np.asarray(linear_to_db(self.gain_exact(distance_m)))

    def loss_db_far_field(self, distance_m: ArrayLike) -> ArrayLike:
        """Approximate path loss in dB (positive numbers)."""
        return -np.asarray(linear_to_db(self.gain_far_field(distance_m)))
