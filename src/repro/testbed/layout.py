"""Synthetic indoor testbed layout.

The paper's experiments ran on roughly 50 Soekris single-board computers with
Atheros 802.11a radios "scattered about two closely-coupled floors of a
large, modern office building".  We cannot use that hardware, so this module
generates a statistically equivalent substitute:

* node positions scattered (with jitter) over one or two office floors;
* a physical channel with the propagation statistics the paper itself
  measured on its testbed (Figure 14: alpha approximately 3.6 and roughly
  10 dB lognormal shadowing), plus an extra attenuation for node pairs on
  different floors (the appendix notes heavy floors deserve a separate term);
* 802.11a (5 GHz) carrier frequency and 15 dBm transmit power for the
  Section 4 experiments.

The layout is deterministic for a given seed so every experiment, test, and
benchmark sees the same synthetic building.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..constants import DEFAULT_TX_POWER_DBM, FREQ_5_GHZ
from ..propagation.channel import ChannelModel
from ..propagation.pathloss import LogDistancePathLoss

__all__ = ["TestbedNode", "TestbedLayout", "generate_office_layout"]


@dataclass(frozen=True)
class TestbedNode:
    """One testbed station."""

    node_id: str
    x: float
    y: float
    floor: int

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass
class TestbedLayout:
    """A synthetic building full of testbed nodes plus its channel model."""

    nodes: List[TestbedNode]
    channel: ChannelModel
    floor_attenuation_db: float
    seed: int

    def __post_init__(self) -> None:
        self._by_id: Dict[str, TestbedNode] = {node.node_id: node for node in self.nodes}
        if len(self._by_id) != len(self.nodes):
            raise ValueError("duplicate node ids in layout")

    def node(self, node_id: str) -> TestbedNode:
        return self._by_id[node_id]

    @property
    def node_ids(self) -> List[str]:
        return [node.node_id for node in self.nodes]

    def distance(self, a: str, b: str) -> float:
        """Horizontal distance between two nodes in metres."""
        na, nb = self._by_id[a], self._by_id[b]
        return float(np.hypot(na.x - nb.x, na.y - nb.y))

    def same_floor(self, a: str, b: str) -> bool:
        return self._by_id[a].floor == self._by_id[b].floor


def generate_office_layout(
    n_nodes: int = 50,
    floors: int = 2,
    floor_width_m: float = 100.0,
    floor_depth_m: float = 60.0,
    alpha: float = 3.6,
    sigma_db: float = 10.0,
    floor_attenuation_db: float = 13.0,
    frequency_hz: float = FREQ_5_GHZ,
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM,
    reference_distance_m: float = 20.0,
    reference_loss_db: float = 77.0,
    seed: int = 7,
) -> TestbedLayout:
    """Generate a deterministic synthetic office testbed.

    Nodes are laid out on a jittered grid so that, like a real deployment,
    link distances span from a few metres to the full building diagonal.
    Pairs on different floors get ``floor_attenuation_db`` of extra loss baked
    into their (otherwise lognormal) shadowing value.

    The path-loss curve is anchored on the paper's own testbed characterisation
    rather than at free-space loss: Figure 14 reports link SNRs spanning from
    the high 40s of dB for nearby pairs down to a few dB at the far side of
    the building (at 2.4 GHz; the 5 GHz links of Section 4 are a little
    weaker still).  The default 77 dB of loss at the 20 m reference gives a
    5 GHz testbed whose link SNRs span roughly 0-50 dB across the building --
    the same mix of strong same-floor links and marginal far / cross-floor
    links, which is what produces distinct short-range and long-range pair
    classes and the full near/transition/far spread of sender-sender RSSI.
    """
    if n_nodes < 4:
        raise ValueError("a testbed needs at least four nodes (two pairs)")
    if floors < 1:
        raise ValueError("need at least one floor")
    rng = np.random.default_rng(seed)

    nodes: List[TestbedNode] = []
    per_floor = int(np.ceil(n_nodes / floors))
    node_index = 0
    for floor in range(floors):
        count = min(per_floor, n_nodes - node_index)
        # Jittered grid: roughly uniform coverage without unrealistic clumping.
        cols = int(np.ceil(np.sqrt(count * floor_width_m / floor_depth_m)))
        rows = int(np.ceil(count / cols))
        spots = [
            (
                (c + 0.5) * floor_width_m / cols,
                (r + 0.5) * floor_depth_m / rows,
            )
            for r in range(rows)
            for c in range(cols)
        ][:count]
        for x, y in spots:
            jitter_x = float(rng.uniform(-0.3, 0.3) * floor_width_m / cols)
            jitter_y = float(rng.uniform(-0.3, 0.3) * floor_depth_m / rows)
            nodes.append(
                TestbedNode(
                    node_id=f"n{node_index:02d}",
                    x=float(np.clip(x + jitter_x, 0.0, floor_width_m)),
                    y=float(np.clip(y + jitter_y, 0.0, floor_depth_m)),
                    floor=floor,
                )
            )
            node_index += 1

    channel = ChannelModel(
        path_loss=LogDistancePathLoss(
            alpha=alpha,
            frequency_hz=frequency_hz,
            reference_distance_m=reference_distance_m,
            reference_loss_db=reference_loss_db,
        ),
        sigma_db=sigma_db,
        tx_power_dbm=tx_power_dbm,
        rng=np.random.default_rng(seed + 1),
    )
    layout = TestbedLayout(
        nodes=nodes, channel=channel, floor_attenuation_db=floor_attenuation_db, seed=seed
    )

    # Pre-draw shadowing for every pair so the channel is frozen for the whole
    # experiment campaign, and subtract the floor penalty for cross-floor pairs.
    ids = layout.node_ids
    shadow_rng = np.random.default_rng(seed + 2)
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            value = float(shadow_rng.normal(0.0, sigma_db))
            if not layout.same_floor(a, b):
                value -= floor_attenuation_db
            channel.set_shadowing_db(a, b, value)
    return layout
