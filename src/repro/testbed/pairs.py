"""Selecting sender-receiver pairs and competing pair combinations.

Section 4 breaks its experiments into a *short range* class (links with at
least 94 % delivery at 6 Mbps) and a *long range* class (80-95 % delivery),
then measures competing pairs drawn from those classes across a spread of
sender-sender separations.  This module reproduces that selection on the
synthetic testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..constants import (
    LONG_RANGE_DELIVERY_MAX,
    LONG_RANGE_DELIVERY_MIN,
    SHORT_RANGE_DELIVERY_MIN,
)
from .layout import TestbedLayout
from .measurement import LinkMeasurement, measure_all_links

__all__ = ["CandidatePair", "CompetingPairs", "select_links", "select_competing_pairs"]


@dataclass(frozen=True)
class CandidatePair:
    """A usable sender -> receiver link."""

    sender: str
    receiver: str
    measurement: LinkMeasurement


@dataclass(frozen=True)
class CompetingPairs:
    """Two disjoint sender-receiver pairs that will contend for the medium."""

    pair_a: CandidatePair
    pair_b: CandidatePair
    sender_sender_rssi_dbm: float
    sender_sender_distance_m: float

    @property
    def node_ids(self) -> tuple[str, str, str, str]:
        return (
            self.pair_a.sender,
            self.pair_a.receiver,
            self.pair_b.sender,
            self.pair_b.receiver,
        )


def select_links(
    layout: TestbedLayout,
    link_class: str,
    max_links: Optional[int] = None,
    seed: int = 0,
    prefer_nearby_fraction: Optional[float] = None,
) -> List[CandidatePair]:
    """Select links whose 6 Mbps delivery rate falls in the requested class.

    ``link_class`` is ``"short"`` (>= 94 % delivery) or ``"long"``
    (80-95 % delivery), matching the Section 4 definitions.

    ``prefer_nearby_fraction`` keeps only that fraction of the in-band links
    with the smallest physical sender-receiver distance.  This matters for the
    long-range class: in a real deployment a "weak" link is typically a
    physically nearby pair separated by floors or walls (the kind of link a
    mesh or AP association would actually use), whereas an exhaustive
    enumeration of node pairs is dominated by links that stretch across the
    whole building.  Keeping the nearer half reproduces the realistic mix.
    """
    if link_class == "short":
        low, high = SHORT_RANGE_DELIVERY_MIN, 1.0
    elif link_class == "long":
        low, high = LONG_RANGE_DELIVERY_MIN, LONG_RANGE_DELIVERY_MAX
    else:
        raise ValueError(f"unknown link class {link_class!r} (use 'short' or 'long')")
    if prefer_nearby_fraction is not None and not 0.0 < prefer_nearby_fraction <= 1.0:
        raise ValueError("prefer_nearby_fraction must lie in (0, 1]")

    candidates = [
        CandidatePair(sender=m.src, receiver=m.dst, measurement=m)
        for m in measure_all_links(layout)
        if m.in_delivery_band(low, high)
    ]
    if prefer_nearby_fraction is not None and candidates:
        candidates.sort(key=lambda pair: pair.measurement.distance_m)
        keep = max(2, int(round(prefer_nearby_fraction * len(candidates))))
        candidates = candidates[:keep]
    rng = np.random.default_rng(seed)
    rng.shuffle(candidates)
    if max_links is not None:
        candidates = candidates[:max_links]
    return candidates


def _candidate_combinations(
    layout: TestbedLayout,
    links: Sequence[CandidatePair],
    rng: np.random.Generator,
    pool_size: int,
) -> List[CompetingPairs]:
    """Randomly assemble a pool of disjoint pair combinations."""
    combos: List[CompetingPairs] = []
    seen: set = set()
    attempts = 0
    max_attempts = 60 * pool_size
    links = list(links)
    while len(combos) < pool_size and attempts < max_attempts:
        attempts += 1
        a, b = rng.choice(len(links), size=2, replace=False)
        pair_a, pair_b = links[int(a)], links[int(b)]
        nodes = {pair_a.sender, pair_a.receiver, pair_b.sender, pair_b.receiver}
        if len(nodes) < 4:
            continue
        key = tuple(sorted((pair_a.sender + pair_a.receiver, pair_b.sender + pair_b.receiver)))
        if key in seen:
            continue
        seen.add(key)
        distance = max(layout.distance(pair_a.sender, pair_b.sender), 1.0)
        budget = layout.channel.link_budget(pair_a.sender, pair_b.sender, distance)
        combos.append(
            CompetingPairs(
                pair_a=pair_a,
                pair_b=pair_b,
                sender_sender_rssi_dbm=budget.rx_power_dbm,
                sender_sender_distance_m=distance,
            )
        )
    return combos


def select_competing_pairs(
    layout: TestbedLayout,
    link_class: str,
    n_combinations: int = 12,
    seed: int = 0,
    links: Optional[Sequence[CandidatePair]] = None,
    pool_size: int = 400,
    prefer_nearby_fraction: Optional[float] = None,
) -> List[CompetingPairs]:
    """Draw competing pair-of-pairs combinations spanning sender separations.

    Like the paper's dataset, the selection deliberately spans the full range
    of sender-sender RSSI present in the testbed -- from senders that hear
    each other loudly, through the transition region around the carrier-sense
    threshold, to senders that cannot detect each other at all -- because the
    interesting carrier-sense behaviour is a function of exactly that quantity
    (Figures 11 and 13 plot against it).  A large random pool of candidate
    combinations is binned by sender-sender RSSI into ``n_combinations``
    equal-width bins and one combination is drawn from each (falling back to
    unused pool entries when a bin is empty).
    """
    if links is None:
        links = select_links(
            layout, link_class, seed=seed, prefer_nearby_fraction=prefer_nearby_fraction
        )
    if len(links) < 2:
        raise ValueError(f"not enough {link_class}-range links in the testbed to form pairs")

    rng = np.random.default_rng(seed + 1)
    pool = _candidate_combinations(layout, links, rng, pool_size)
    if len(pool) <= n_combinations:
        pool.sort(key=lambda c: -c.sender_sender_rssi_dbm)
        return pool

    rssi = np.asarray([c.sender_sender_rssi_dbm for c in pool])
    edges = np.linspace(rssi.max(), rssi.min(), n_combinations + 1)
    chosen: List[CompetingPairs] = []
    used_indices: set = set()
    for i in range(n_combinations):
        high, low = edges[i], edges[i + 1]
        in_bin = [
            j
            for j in range(len(pool))
            if j not in used_indices and low <= rssi[j] <= high
        ]
        if not in_bin:
            continue
        pick = int(rng.choice(in_bin))
        used_indices.add(pick)
        chosen.append(pool[pick])
    # Top up from the unused pool if some bins were empty.
    remaining = [j for j in range(len(pool)) if j not in used_indices]
    rng.shuffle(remaining)
    while len(chosen) < n_combinations and remaining:
        chosen.append(pool[remaining.pop()])
    chosen.sort(key=lambda c: -c.sender_sender_rssi_dbm)
    return chosen
