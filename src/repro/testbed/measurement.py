"""Link probing: RSSI and delivery-rate measurements.

Section 4 classifies sender-receiver pairs by their packet delivery rate at
6 Mbps and plots results against the RSSI measured between the two senders.
The appendix (Figure 14) additionally measures RSSI between *all* node pairs
(at 2.4 GHz with 1 Mbps probes) and fits the propagation model to it.

This module provides those measurements on the synthetic testbed.  Delivery
probing uses the PHY error model directly (equivalent to sending a large
number of probe frames on an otherwise idle channel); RSSI probing reads the
channel's link budget, optionally adding measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..capacity.error_models import average_packet_success_rate
from ..capacity.rates import RateInfo, rate_by_mbps
from ..constants import EXPERIMENT_PAYLOAD_BYTES
from .layout import TestbedLayout

#: Slow channel variation (dB) assumed when probing long-run delivery rates.
#: Over a multi-second measurement the indoor channel wanders (people moving,
#: residual fading, hardware drift); this is what softens the delivery-vs-SNR
#: curve enough that the paper's 94 % / 80-95 % delivery classes correspond to
#: the ~27 dB / ~16 dB average SNR figures it quotes.
DEFAULT_PROBE_VARIATION_DB = 8.0

__all__ = ["LinkMeasurement", "measure_link", "measure_all_links", "rssi_survey"]


@dataclass(frozen=True)
class LinkMeasurement:
    """Probing results for one directed link."""

    src: str
    dst: str
    distance_m: float
    rssi_dbm: float
    snr_db: float
    delivery_rate_6mbps: float

    def in_delivery_band(self, low: float, high: float = 1.0) -> bool:
        """Whether the link's 6 Mbps delivery rate falls within [low, high]."""
        return low <= self.delivery_rate_6mbps <= high


def measure_link(
    layout: TestbedLayout,
    src: str,
    dst: str,
    probe_rate: Optional[RateInfo] = None,
    payload_bytes: int = EXPERIMENT_PAYLOAD_BYTES,
    probe_variation_db: float = DEFAULT_PROBE_VARIATION_DB,
) -> LinkMeasurement:
    """Probe one link on an otherwise idle channel.

    The delivery rate is the long-run average over slow channel variation of
    ``probe_variation_db`` around the link's mean SNR (see
    :data:`DEFAULT_PROBE_VARIATION_DB`).
    """
    if probe_rate is None:
        probe_rate = rate_by_mbps(6.0)
    distance = max(layout.distance(src, dst), 1.0)
    budget = layout.channel.link_budget(src, dst, distance)
    snr_db = budget.snr_db
    delivery = average_packet_success_rate(
        snr_db, probe_rate, payload_bytes, sigma_db=probe_variation_db
    )
    return LinkMeasurement(
        src=src,
        dst=dst,
        distance_m=distance,
        rssi_dbm=budget.rx_power_dbm,
        snr_db=snr_db,
        delivery_rate_6mbps=delivery,
    )


def measure_all_links(
    layout: TestbedLayout,
    probe_rate: Optional[RateInfo] = None,
    payload_bytes: int = EXPERIMENT_PAYLOAD_BYTES,
) -> List[LinkMeasurement]:
    """Probe every ordered node pair in the testbed."""
    measurements: List[LinkMeasurement] = []
    ids = layout.node_ids
    for src in ids:
        for dst in ids:
            if src == dst:
                continue
            measurements.append(measure_link(layout, src, dst, probe_rate, payload_bytes))
    return measurements


def rssi_survey(
    layout: TestbedLayout,
    detection_threshold_dbm: float = -92.0,
    measurement_noise_db: float = 1.0,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """All-pairs RSSI survey in the style of the Figure 14 dataset.

    Returns arrays of distances and SNRs for *detected* links plus the
    distances of censored (undetected) links, ready to feed into
    :func:`repro.propagation.fitting.fit_path_loss_shadowing`.
    """
    rng = np.random.default_rng(seed)
    detected_distances: List[float] = []
    detected_snr_db: List[float] = []
    censored_distances: List[float] = []
    ids = layout.node_ids
    noise_floor = layout.channel.noise_floor_dbm
    for i, src in enumerate(ids):
        for dst in ids[i + 1 :]:
            distance = max(layout.distance(src, dst), 1.0)
            budget = layout.channel.link_budget(src, dst, distance)
            rssi = budget.rx_power_dbm + float(rng.normal(0.0, measurement_noise_db))
            if rssi >= detection_threshold_dbm:
                detected_distances.append(distance)
                detected_snr_db.append(rssi - noise_floor)
            else:
                censored_distances.append(distance)
    return {
        "distances": np.asarray(detected_distances),
        "snr_db": np.asarray(detected_snr_db),
        "censored_distances": np.asarray(censored_distances),
        "detection_threshold_snr_db": np.asarray(detection_threshold_dbm - noise_floor),
    }
