"""Section 5 exposed-terminal study.

Section 5 argues that exploiting exposed terminals is much less valuable than
bitrate adaptation: on the short-range test set,

* using even the weak 6-24 Mbps adaptation "more than doubles average
  throughput compared to the base rate";
* "perfectly exploiting the exposed terminals provides just shy of 10 %
  increased throughput" (over carrier sense at the base rate);
* combining both yields "only about 3 % more than bitrate adaptation alone".

This module computes exactly those three comparisons from the per-rate detail
already gathered by :class:`repro.testbed.experiment.TestbedExperiment`:

* *base rate, CS*           -- carrier-sense throughput at 6 Mbps;
* *base rate, exposed*      -- per combination, the better of carrier sense
  and pure concurrency at 6 Mbps (a perfect exposed-terminal scheduler can
  always fall back to carrier sense, so the max is the right model);
* *adapted, CS*             -- carrier sense at per-transmitter best rates;
* *adapted, exposed*        -- the better of carrier sense and concurrency at
  per-transmitter best rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .experiment import PairExperimentResult

__all__ = ["ExposedTerminalStudy", "exposed_terminal_study"]


@dataclass(frozen=True)
class ExposedTerminalStudy:
    """Average throughputs (pkt/s) of the four Section 5 configurations."""

    base_rate_mbps: float
    base_rate_cs_pps: float
    base_rate_exposed_pps: float
    adapted_cs_pps: float
    adapted_exposed_pps: float
    n_combinations: int

    @property
    def adaptation_gain(self) -> float:
        """Throughput ratio of bitrate adaptation over the base rate (CS both)."""
        return self.adapted_cs_pps / self.base_rate_cs_pps

    @property
    def exposed_gain_at_base_rate(self) -> float:
        """Gain from perfect exposed-terminal exploitation at the base rate."""
        return self.base_rate_exposed_pps / self.base_rate_cs_pps

    @property
    def exposed_gain_with_adaptation(self) -> float:
        """Residual gain from exposed terminals on top of bitrate adaptation."""
        return self.adapted_exposed_pps / self.adapted_cs_pps

    def format_report(self) -> str:
        return "\n".join(
            [
                f"Base rate ({self.base_rate_mbps:g} Mbps), carrier sense: "
                f"{self.base_rate_cs_pps:.0f} pkt/s",
                f"Base rate, exposed terminals exploited: "
                f"{self.base_rate_exposed_pps:.0f} pkt/s "
                f"({100 * (self.exposed_gain_at_base_rate - 1):+.1f}%)",
                f"Bitrate adaptation, carrier sense: {self.adapted_cs_pps:.0f} pkt/s "
                f"({self.adaptation_gain:.2f}x base rate)",
                f"Bitrate adaptation + exposed terminals: {self.adapted_exposed_pps:.0f} pkt/s "
                f"({100 * (self.exposed_gain_with_adaptation - 1):+.1f}% over adaptation)",
            ]
        )


def _base_rate_detail(result: PairExperimentResult, base_rate_mbps: float):
    for detail in result.per_rate:
        if detail.rate_mbps == base_rate_mbps:
            return detail
    raise ValueError(
        f"combination has no measurements at the base rate {base_rate_mbps:g} Mbps"
    )


def exposed_terminal_study(
    results: Sequence[PairExperimentResult], base_rate_mbps: float = 6.0
) -> ExposedTerminalStudy:
    """Compute the Section 5 comparison from completed pair experiments."""
    if not results:
        raise ValueError("need at least one pair experiment result")

    base_cs, base_exposed, adapted_cs, adapted_exposed = [], [], [], []
    for result in results:
        duration = result.duration_s
        detail = _base_rate_detail(result, base_rate_mbps)
        cs_base = (detail.carrier_sense_a_packets + detail.carrier_sense_b_packets) / duration
        conc_base = (detail.concurrency_a_packets + detail.concurrency_b_packets) / duration
        base_cs.append(cs_base)
        base_exposed.append(max(cs_base, conc_base))

        cs_adapted = result.carrier_sense.combined_pps
        conc_adapted = result.concurrency.combined_pps
        adapted_cs.append(cs_adapted)
        adapted_exposed.append(max(cs_adapted, conc_adapted))

    return ExposedTerminalStudy(
        base_rate_mbps=base_rate_mbps,
        base_rate_cs_pps=float(np.mean(base_cs)),
        base_rate_exposed_pps=float(np.mean(base_exposed)),
        adapted_cs_pps=float(np.mean(adapted_cs)),
        adapted_exposed_pps=float(np.mean(adapted_exposed)),
        n_combinations=len(results),
    )
