"""Synthetic indoor testbed and the Section 4 / Section 5 experiment protocols.

Substitutes for the paper's ~50-node Atheros/Soekris 802.11a testbed: a
deterministic office-building layout with the propagation statistics the
paper measured, link probing (delivery rate and RSSI), pair selection by
link-quality class, the competing-pairs measurement protocol, and the
exposed-terminal study.
"""

from .experiment import (
    CampaignSummary,
    PairExperimentResult,
    RateRunDetail,
    StrategyThroughput,
    TestbedExperiment,
)
from .exposed import ExposedTerminalStudy, exposed_terminal_study
from .layout import TestbedLayout, TestbedNode, generate_office_layout
from .measurement import LinkMeasurement, measure_all_links, measure_link, rssi_survey
from .pairs import CandidatePair, CompetingPairs, select_competing_pairs, select_links

__all__ = [
    "TestbedNode",
    "TestbedLayout",
    "generate_office_layout",
    "LinkMeasurement",
    "measure_link",
    "measure_all_links",
    "rssi_survey",
    "CandidatePair",
    "CompetingPairs",
    "select_links",
    "select_competing_pairs",
    "RateRunDetail",
    "StrategyThroughput",
    "PairExperimentResult",
    "CampaignSummary",
    "TestbedExperiment",
    "ExposedTerminalStudy",
    "exposed_terminal_study",
]
