"""The Section 4 measurement protocol on the synthetic testbed.

For each combination of two competing sender-receiver pairs the paper
measures, at each fixed bitrate in {6, 9, 12, 18, 24} Mbps:

* **multiplexing** -- each sender runs *alone* for the measurement window
  (taking turns), so the combined rate is half the sum of the solo rates;
* **concurrency** -- both senders run simultaneously with carrier sense
  disabled;
* **carrier sense** -- both senders run simultaneously with the default
  hardware carrier sense enabled;

and then "independently identif[ies] the maximum throughput bitrate for each
transmitter".  The per-strategy combined throughput with those best rates is
what Figures 10-13 plot, and "optimal" is the per-combination maximum over
the three strategies (the summary tables of Sections 4.1 and 4.2).

:class:`TestbedExperiment` reproduces that protocol run-for-run on the packet
simulator, caching solo runs (which do not depend on the competing pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constants import (
    EXPERIMENT_PAYLOAD_BYTES,
    EXPERIMENT_RATES_MBPS,
    EXPERIMENT_RUN_SECONDS,
)
from ..simulation.network import WirelessNetwork
from ..simulation.traffic import SaturatedTraffic
from .layout import TestbedLayout
from .pairs import CompetingPairs

__all__ = [
    "RateRunDetail",
    "StrategyThroughput",
    "PairExperimentResult",
    "CampaignSummary",
    "TestbedExperiment",
]


@dataclass(frozen=True)
class RateRunDetail:
    """Delivered packet counts at one fixed bitrate for one pair combination."""

    rate_mbps: float
    solo_a_packets: int
    solo_b_packets: int
    concurrency_a_packets: int
    concurrency_b_packets: int
    carrier_sense_a_packets: int
    carrier_sense_b_packets: int


@dataclass(frozen=True)
class StrategyThroughput:
    """Best-rate combined throughput for one strategy."""

    strategy: str
    combined_pps: float
    rate_a_mbps: float
    rate_b_mbps: float
    pair_a_pps: float
    pair_b_pps: float


@dataclass(frozen=True)
class PairExperimentResult:
    """Full Section 4 measurement for one competing pair combination."""

    pairs: CompetingPairs
    duration_s: float
    multiplexing: StrategyThroughput
    concurrency: StrategyThroughput
    carrier_sense: StrategyThroughput
    per_rate: Tuple[RateRunDetail, ...]

    @property
    def sender_sender_rssi_dbm(self) -> float:
        return self.pairs.sender_sender_rssi_dbm

    @property
    def optimal_pps(self) -> float:
        """Best combined throughput over the three strategies."""
        return max(
            self.multiplexing.combined_pps,
            self.concurrency.combined_pps,
            self.carrier_sense.combined_pps,
        )

    @property
    def cs_fraction_of_optimal(self) -> float:
        if self.optimal_pps == 0:
            return 1.0
        return self.carrier_sense.combined_pps / self.optimal_pps


@dataclass(frozen=True)
class CampaignSummary:
    """Averages over all pair combinations (the Section 4.1 / 4.2 tables)."""

    results: Tuple[PairExperimentResult, ...]

    def _mean(self, values: Sequence[float]) -> float:
        return float(np.mean(values)) if values else 0.0

    @property
    def optimal_pps(self) -> float:
        return self._mean([r.optimal_pps for r in self.results])

    @property
    def carrier_sense_pps(self) -> float:
        return self._mean([r.carrier_sense.combined_pps for r in self.results])

    @property
    def multiplexing_pps(self) -> float:
        return self._mean([r.multiplexing.combined_pps for r in self.results])

    @property
    def concurrency_pps(self) -> float:
        return self._mean([r.concurrency.combined_pps for r in self.results])

    def fraction_of_optimal(self, strategy: str) -> float:
        """Average strategy throughput as a fraction of average optimal."""
        by_name = {
            "carrier_sense": self.carrier_sense_pps,
            "multiplexing": self.multiplexing_pps,
            "concurrency": self.concurrency_pps,
        }
        if strategy not in by_name:
            raise KeyError(f"unknown strategy {strategy!r}")
        if self.optimal_pps == 0:
            return 1.0
        return by_name[strategy] / self.optimal_pps

    def format_table(self) -> str:
        """Render the summary in the paper's table layout."""
        lines = [
            f"Optimal (max over strategies): {self.optimal_pps:.0f} packets / sec",
            f"Carrier Sense: {self.carrier_sense_pps:.0f} pkt/s "
            f"({100 * self.fraction_of_optimal('carrier_sense'):.0f}% opt)",
            f"Multiplexing: {self.multiplexing_pps:.0f} pkt/s "
            f"({100 * self.fraction_of_optimal('multiplexing'):.0f}% opt)",
            f"Concurrency: {self.concurrency_pps:.0f} pkt/s "
            f"({100 * self.fraction_of_optimal('concurrency'):.0f}% opt)",
        ]
        return "\n".join(lines)


class TestbedExperiment:
    """Runs the Section 4 protocol for competing pair combinations."""

    # Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        layout: TestbedLayout,
        rates_mbps: Sequence[float] = EXPERIMENT_RATES_MBPS,
        run_duration_s: float = EXPERIMENT_RUN_SECONDS,
        payload_bytes: int = EXPERIMENT_PAYLOAD_BYTES,
        cca_threshold_dbm: float = -82.0,
        seed: int = 0,
    ) -> None:
        if run_duration_s <= 0:
            raise ValueError("run duration must be positive")
        if not rates_mbps:
            raise ValueError("need at least one bitrate")
        self.layout = layout
        self.rates_mbps = tuple(float(r) for r in rates_mbps)
        self.run_duration_s = run_duration_s
        self.payload_bytes = payload_bytes
        self.cca_threshold_dbm = cca_threshold_dbm
        self.seed = seed
        self._solo_cache: Dict[Tuple[str, str, float], int] = {}

    # -- individual runs -----------------------------------------------------------

    def _build_network(
        self,
        senders: Sequence[Tuple[str, str]],
        rate_mbps: float,
        cca_threshold_dbm: Optional[float],
        extra_receivers: Sequence[str] = (),
    ) -> WirelessNetwork:
        net = WirelessNetwork(
            channel=self.layout.channel, seed=self.seed, cca_threshold_dbm=cca_threshold_dbm
        )
        added = set()
        for sender, receiver in senders:
            net.add_node(
                sender,
                self.layout.node(sender).position,
                traffic=SaturatedTraffic(destination="*", payload_bytes=self.payload_bytes),
                rate_mbps=rate_mbps,
            )
            added.add(sender)
            if receiver not in added:
                net.add_node(receiver, self.layout.node(receiver).position)
                added.add(receiver)
        for receiver in extra_receivers:
            if receiver not in added:
                net.add_node(receiver, self.layout.node(receiver).position)
                added.add(receiver)
        return net

    def _solo_packets(self, sender: str, receiver: str, rate_mbps: float) -> int:
        """Delivered packets when the pair runs alone (cached)."""
        key = (sender, receiver, rate_mbps)
        if key not in self._solo_cache:
            net = self._build_network([(sender, receiver)], rate_mbps, self.cca_threshold_dbm)
            result = net.run(self.run_duration_s)
            self._solo_cache[key] = result.packets_delivered(sender, receiver)
        return self._solo_cache[key]

    def _competing_packets(
        self, pairs: CompetingPairs, rate_mbps: float, cca_threshold_dbm: Optional[float]
    ) -> Tuple[int, int]:
        """Delivered packets for both pairs running simultaneously."""
        sa, ra = pairs.pair_a.sender, pairs.pair_a.receiver
        sb, rb = pairs.pair_b.sender, pairs.pair_b.receiver
        net = self._build_network([(sa, ra), (sb, rb)], rate_mbps, cca_threshold_dbm)
        result = net.run(self.run_duration_s)
        return (result.packets_delivered(sa, ra), result.packets_delivered(sb, rb))

    def measure_rates(self, pairs: CompetingPairs) -> List[RateRunDetail]:
        """Run every strategy at every fixed bitrate for one pair combination."""
        details: List[RateRunDetail] = []
        for rate in self.rates_mbps:
            solo_a = self._solo_packets(pairs.pair_a.sender, pairs.pair_a.receiver, rate)
            solo_b = self._solo_packets(pairs.pair_b.sender, pairs.pair_b.receiver, rate)
            conc_a, conc_b = self._competing_packets(pairs, rate, cca_threshold_dbm=None)
            cs_a, cs_b = self._competing_packets(pairs, rate, self.cca_threshold_dbm)
            details.append(
                RateRunDetail(
                    rate_mbps=rate,
                    solo_a_packets=solo_a,
                    solo_b_packets=solo_b,
                    concurrency_a_packets=conc_a,
                    concurrency_b_packets=conc_b,
                    carrier_sense_a_packets=cs_a,
                    carrier_sense_b_packets=cs_b,
                )
            )
        return details

    # -- per-combination aggregation --------------------------------------------------

    def _best_rate_strategy(
        self,
        strategy: str,
        details: Sequence[RateRunDetail],
        a_counts: Dict[float, int],
        b_counts: Dict[float, int],
        time_share: float,
    ) -> StrategyThroughput:
        best_rate_a = max(a_counts, key=lambda rate: a_counts[rate])
        best_rate_b = max(b_counts, key=lambda rate: b_counts[rate])
        pair_a_pps = time_share * a_counts[best_rate_a] / self.run_duration_s
        pair_b_pps = time_share * b_counts[best_rate_b] / self.run_duration_s
        return StrategyThroughput(
            strategy=strategy,
            combined_pps=pair_a_pps + pair_b_pps,
            rate_a_mbps=best_rate_a,
            rate_b_mbps=best_rate_b,
            pair_a_pps=pair_a_pps,
            pair_b_pps=pair_b_pps,
        )

    def summarise(self, pairs: CompetingPairs, details: Sequence[RateRunDetail]) -> PairExperimentResult:
        """Pick per-transmitter best rates and assemble the strategy results."""
        mux = self._best_rate_strategy(
            "multiplexing",
            details,
            {d.rate_mbps: d.solo_a_packets for d in details},
            {d.rate_mbps: d.solo_b_packets for d in details},
            time_share=0.5,
        )
        conc = self._best_rate_strategy(
            "concurrency",
            details,
            {d.rate_mbps: d.concurrency_a_packets for d in details},
            {d.rate_mbps: d.concurrency_b_packets for d in details},
            time_share=1.0,
        )
        cs = self._best_rate_strategy(
            "carrier_sense",
            details,
            {d.rate_mbps: d.carrier_sense_a_packets for d in details},
            {d.rate_mbps: d.carrier_sense_b_packets for d in details},
            time_share=1.0,
        )
        return PairExperimentResult(
            pairs=pairs,
            duration_s=self.run_duration_s,
            multiplexing=mux,
            concurrency=conc,
            carrier_sense=cs,
            per_rate=tuple(details),
        )

    def run_pair(self, pairs: CompetingPairs) -> PairExperimentResult:
        """Full protocol for one competing pair combination."""
        return self.summarise(pairs, self.measure_rates(pairs))

    def run_campaign(self, combinations: Sequence[CompetingPairs]) -> CampaignSummary:
        """Run the full protocol over many combinations and summarise."""
        if not combinations:
            raise ValueError("need at least one pair combination")
        results = tuple(self.run_pair(pairs) for pairs in combinations)
        return CampaignSummary(results=results)
