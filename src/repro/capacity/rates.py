"""802.11a/g bitrate tables and frame timing.

The Section 4 experiments run on 802.11a hardware at fixed rates of 6, 9, 12,
18, and 24 Mbps with 1400-byte packets; the packet-level simulator needs the
corresponding modulation/coding parameters, minimum-SNR estimates, and on-air
frame durations.  This module provides the full 802.11a OFDM rate set plus the
802.11b DSSS rates (used for the 2.4 GHz RSSI probes in Figure 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = [
    "RateInfo",
    "OFDM_RATES",
    "DSSS_RATES",
    "rate_by_mbps",
    "frame_airtime_s",
    "ofdm_rate_set",
    "EXPERIMENT_RATE_SET",
]

# 802.11a OFDM timing constants.
OFDM_SYMBOL_DURATION_S = 4e-6
OFDM_PREAMBLE_S = 16e-6
OFDM_SIGNAL_FIELD_S = 4e-6
OFDM_SERVICE_TAIL_BITS = 22
MAC_HEADER_FCS_BYTES = 34  # 802.11 data MAC header (30) + FCS (4)

# DCF timing (802.11a).
SLOT_TIME_S = 9e-6
SIFS_S = 16e-6
DIFS_S = SIFS_S + 2 * SLOT_TIME_S
CW_MIN = 15
CW_MAX = 1023
ACK_BYTES = 14


@dataclass(frozen=True)
class RateInfo:
    """One entry of a PHY rate table.

    Attributes
    ----------
    mbps:
        Nominal data rate in megabits per second.
    modulation:
        Modulation name (``BPSK``, ``QPSK``, ``16-QAM``, ``64-QAM``, ...).
    code_rate:
        Convolutional code rate (1.0 for uncoded DSSS rates).
    bits_per_symbol:
        *Data* bits carried per OFDM symbol after coding (0 for DSSS rates);
        equal to ``mbps * 4`` for the 4-microsecond 802.11a symbol.
    min_snr_db:
        Approximate SNR needed for a low packet-error rate with 1400-byte
        frames; used for quick feasibility checks and by the oracle rate
        adaptation algorithm as a starting point.
    """

    mbps: float
    modulation: str
    code_rate: float
    bits_per_symbol: int
    min_snr_db: float

    @property
    def bits_per_second(self) -> float:
        return self.mbps * 1e6


#: 802.11a/g OFDM rates.  Minimum-SNR figures follow the commonly used
#: receiver-sensitivity deltas from the 802.11 standard (+ ~3 dB margin).
OFDM_RATES: tuple[RateInfo, ...] = (
    RateInfo(6.0, "BPSK", 1 / 2, 24, 5.0),
    RateInfo(9.0, "BPSK", 3 / 4, 36, 6.0),
    RateInfo(12.0, "QPSK", 1 / 2, 48, 7.5),
    RateInfo(18.0, "QPSK", 3 / 4, 72, 9.5),
    RateInfo(24.0, "16-QAM", 1 / 2, 96, 12.5),
    RateInfo(36.0, "16-QAM", 3 / 4, 144, 16.5),
    RateInfo(48.0, "64-QAM", 2 / 3, 192, 21.0),
    RateInfo(54.0, "64-QAM", 3 / 4, 216, 23.0),
)

#: 802.11b DSSS/CCK rates (2.4 GHz only).
DSSS_RATES: tuple[RateInfo, ...] = (
    RateInfo(1.0, "DBPSK", 1.0, 0, 1.0),
    RateInfo(2.0, "DQPSK", 1.0, 0, 3.0),
    RateInfo(5.5, "CCK", 1.0, 0, 6.0),
    RateInfo(11.0, "CCK", 1.0, 0, 9.0),
)

#: The fixed-rate subset swept by the Section 4 experiments.
EXPERIMENT_RATE_SET: tuple[RateInfo, ...] = tuple(
    r for r in OFDM_RATES if r.mbps in (6.0, 9.0, 12.0, 18.0, 24.0)
)


def rate_by_mbps(mbps: float, table: Sequence[RateInfo] = OFDM_RATES) -> RateInfo:
    """Look up a rate table entry by its nominal Mbps value."""
    for rate in table:
        if math.isclose(rate.mbps, mbps):
            return rate
    raise KeyError(f"no rate entry for {mbps} Mbps")


def ofdm_rate_set(mbps_values: Iterable[float]) -> List[RateInfo]:
    """Return the OFDM rate entries for the requested Mbps values, sorted ascending."""
    rates = [rate_by_mbps(m) for m in mbps_values]
    return sorted(rates, key=lambda r: r.mbps)


def frame_airtime_s(payload_bytes: int, rate: RateInfo, include_mac_header: bool = True) -> float:
    """On-air duration of a data frame at the given OFDM rate.

    Includes PLCP preamble, SIGNAL field, service/tail bits, and (optionally)
    the MAC header and FCS.  DSSS rates use a simplified long-preamble model.
    """
    if payload_bytes < 0:
        raise ValueError("payload size must be non-negative")
    header_bytes = MAC_HEADER_FCS_BYTES if include_mac_header else 0
    total_bits = 8 * (payload_bytes + header_bytes)
    if rate.bits_per_symbol > 0:
        symbols = math.ceil((total_bits + OFDM_SERVICE_TAIL_BITS) / rate.bits_per_symbol)
        return OFDM_PREAMBLE_S + OFDM_SIGNAL_FIELD_S + symbols * OFDM_SYMBOL_DURATION_S
    # DSSS long preamble: 144 bit preamble + 48 bit PLCP header at 1 Mbps.
    plcp_s = (144 + 48) / 1e6
    return plcp_s + total_bits / rate.bits_per_second


def ack_airtime_s(rate: RateInfo) -> float:
    """On-air duration of an ACK frame sent at the given (control) rate."""
    return frame_airtime_s(ACK_BYTES, rate, include_mac_header=False)
