"""Capacity and bitrate substrate: Shannon model, 802.11 rates, adaptation.

Provides the throughput models shared by the analytical carrier-sense model
(Shannon capacity as an adaptive-bitrate proxy) and the packet-level simulator
(discrete 802.11a rates with SNR-dependent packet error rates and bitrate
adaptation algorithms).
"""

from .adaptation import (
    FixedRate,
    OracleRateSelector,
    RateSelector,
    SampleRateAdapter,
    best_rate_for_snr,
    expected_goodput_bps,
)
from .error_models import (
    average_packet_success_rate,
    ber_bpsk,
    ber_mqam,
    ber_qpsk,
    coded_ber,
    packet_error_rate,
    packet_success_rate,
    raw_ber,
)
from .rates import (
    ACK_BYTES,
    CW_MAX,
    CW_MIN,
    DIFS_S,
    DSSS_RATES,
    EXPERIMENT_RATE_SET,
    OFDM_RATES,
    SIFS_S,
    SLOT_TIME_S,
    RateInfo,
    ack_airtime_s,
    frame_airtime_s,
    ofdm_rate_set,
    rate_by_mbps,
)
from .shannon import (
    capacity_from_powers,
    effective_capacity,
    shannon_capacity,
    sinr,
    snr_for_capacity,
)

__all__ = [
    "shannon_capacity",
    "sinr",
    "capacity_from_powers",
    "snr_for_capacity",
    "effective_capacity",
    "RateInfo",
    "OFDM_RATES",
    "DSSS_RATES",
    "EXPERIMENT_RATE_SET",
    "rate_by_mbps",
    "ofdm_rate_set",
    "frame_airtime_s",
    "ack_airtime_s",
    "SLOT_TIME_S",
    "SIFS_S",
    "DIFS_S",
    "CW_MIN",
    "CW_MAX",
    "ACK_BYTES",
    "ber_bpsk",
    "ber_qpsk",
    "ber_mqam",
    "raw_ber",
    "coded_ber",
    "packet_error_rate",
    "packet_success_rate",
    "average_packet_success_rate",
    "RateSelector",
    "FixedRate",
    "OracleRateSelector",
    "SampleRateAdapter",
    "expected_goodput_bps",
    "best_rate_for_snr",
]
