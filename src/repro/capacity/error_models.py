"""SNR -> bit/packet error rate models for the packet simulator.

The analytical model works directly with Shannon capacity, but the packet
simulator needs to decide whether each individual frame is received given its
SINR and bitrate.  We use standard AWGN bit-error-rate expressions for the
802.11a modulations, a simple hard-decision Viterbi coding-gain approximation,
and an independent-bit-error packet-error model.  The resulting per-rate PER
curves have the familiar waterfall shape: ~0 above the rate's minimum SNR and
~1 a few dB below it, which is all the reproduction's conclusions depend on
(the paper's own model is even coarser -- pure Shannon capacity).
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
from scipy.special import erfc

from .rates import RateInfo

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "ber_bpsk",
    "ber_qpsk",
    "ber_mqam",
    "coded_ber",
    "raw_ber",
    "packet_error_rate",
    "packet_success_rate",
    "average_packet_success_rate",
]


def _q_function(x: ArrayLike) -> ArrayLike:
    """Gaussian tail probability Q(x)."""
    return 0.5 * erfc(np.asarray(x, dtype=float) / math.sqrt(2.0))


def ber_bpsk(snr_linear: ArrayLike) -> ArrayLike:
    """BPSK bit error rate versus per-bit SNR (AWGN)."""
    snr = np.maximum(np.asarray(snr_linear, dtype=float), 0.0)
    return _q_function(np.sqrt(2.0 * snr))


def ber_qpsk(snr_linear: ArrayLike) -> ArrayLike:
    """QPSK bit error rate versus per-bit SNR (same as BPSK per bit)."""
    return ber_bpsk(snr_linear)


def ber_mqam(snr_linear: ArrayLike, m: int) -> ArrayLike:
    """Square M-QAM approximate bit error rate versus per-bit SNR."""
    if m < 4 or (m & (m - 1)) != 0:
        raise ValueError("M must be a power of two >= 4")
    k = math.log2(m)
    snr = np.maximum(np.asarray(snr_linear, dtype=float), 0.0)
    arg = np.sqrt(3.0 * k * snr / (m - 1.0))
    return (4.0 / k) * (1.0 - 1.0 / math.sqrt(m)) * _q_function(arg)


_MODULATION_BITS = {
    "BPSK": 1,
    "DBPSK": 1,
    "QPSK": 2,
    "DQPSK": 2,
    "CCK": 4,
    "16-QAM": 4,
    "64-QAM": 6,
}


def raw_ber(snr_db: ArrayLike, rate: RateInfo) -> ArrayLike:
    """Uncoded bit error rate for the modulation of ``rate`` at the given SNR (dB).

    The SNR is the per-symbol SNR of the 20 MHz channel; it is converted to a
    per-bit SNR by dividing by the modulation's bits per symbol.
    """
    bits = _MODULATION_BITS.get(rate.modulation)
    if bits is None:
        raise KeyError(f"unknown modulation {rate.modulation!r}")
    snr_linear = np.power(10.0, np.asarray(snr_db, dtype=float) / 10.0) / bits
    if bits == 1:
        return ber_bpsk(snr_linear)
    if bits == 2:
        return ber_qpsk(snr_linear)
    if rate.modulation == "CCK":
        # Treat CCK roughly as QPSK with a 3 dB spreading gain.
        return ber_qpsk(2.0 * snr_linear)
    return ber_mqam(snr_linear, 2**bits)


#: Approximate coding gain (dB) of the 802.11a convolutional code at each rate.
_CODING_GAIN_DB = {1 / 2: 5.0, 2 / 3: 4.0, 3 / 4: 3.5, 1.0: 0.0}


def coded_ber(snr_db: ArrayLike, rate: RateInfo) -> ArrayLike:
    """Post-decoding bit error rate, approximating Viterbi decoding as an SNR gain."""
    gain = _CODING_GAIN_DB.get(rate.code_rate, 3.0)
    return raw_ber(np.asarray(snr_db, dtype=float) + gain, rate)


def _packet_error_rate_scalar(snr_db: float, rate: RateInfo, payload_bytes: int) -> float:
    """Scalar fast path: no array coercion, ``np.clip``, or ``errstate``.

    Bit-identical to the vectorized path on the same input (pinned by
    tests/test_capacity_rates_errors.py): the transcendental steps that
    numpy evaluates with its own kernels (``power``, ``exp``, ``log1p``,
    ``erfc``) stay numpy/scipy scalar calls -- ``math``'s libm versions can
    differ in the last ulp -- while the pure-IEEE arithmetic (multiply,
    divide, ``sqrt``, min/max) runs as plain Python float ops.  The packet
    simulator calls this once per decoded frame, which is why the array
    machinery overhead was worth removing (ROADMAP open item).
    """
    bits_per_symbol = _MODULATION_BITS.get(rate.modulation)
    if bits_per_symbol is None:
        raise KeyError(f"unknown modulation {rate.modulation!r}")
    if snr_db != snr_db:  # NaN propagates exactly as through the array path
        return float("nan")
    gain = _CODING_GAIN_DB.get(rate.code_rate, 3.0)
    snr_linear = float(np.power(10.0, (snr_db + gain) / 10.0)) / bits_per_symbol
    if snr_linear < 0.0:
        snr_linear = 0.0
    if bits_per_symbol <= 2:
        ber = 0.5 * float(erfc(math.sqrt(2.0 * snr_linear) / math.sqrt(2.0)))
    elif rate.modulation == "CCK":
        ber = 0.5 * float(erfc(math.sqrt(2.0 * 2.0 * snr_linear) / math.sqrt(2.0)))
    else:
        m = 2**bits_per_symbol
        k = math.log2(m)
        arg = math.sqrt(3.0 * k * snr_linear / (m - 1.0))
        ber = (
            (4.0 / k)
            * (1.0 - 1.0 / math.sqrt(m))
            * (0.5 * float(erfc(arg / math.sqrt(2.0))))
        )
    if ber > 1.0:
        ber = 1.0
    per = 1.0 - float(np.exp(8 * payload_bytes * float(np.log1p(-min(ber, 1.0 - 1e-15)))))
    if per < 0.0:
        return 0.0
    if per > 1.0:
        return 1.0
    return per


def packet_error_rate(snr_db: ArrayLike, rate: RateInfo, payload_bytes: int = 1400) -> ArrayLike:
    """Packet error rate assuming independent bit errors after decoding.

    Python/numpy float scalars take a dedicated fast path (see
    :func:`_packet_error_rate_scalar`) that returns the bit-identical value
    without any array machinery; array inputs vectorize as before.
    """
    if payload_bytes <= 0:
        raise ValueError("payload size must be positive")
    if isinstance(snr_db, (int, float)) and not isinstance(snr_db, bool):
        return _packet_error_rate_scalar(float(snr_db), rate, payload_bytes)
    ber = np.asarray(coded_ber(snr_db, rate), dtype=float)
    ber = np.clip(ber, 0.0, 1.0)
    bits = 8 * payload_bytes
    with np.errstate(invalid="ignore"):
        per = 1.0 - np.exp(bits * np.log1p(-np.minimum(ber, 1.0 - 1e-15)))
    per = np.clip(per, 0.0, 1.0)
    if np.ndim(snr_db) == 0:
        return float(per)
    return per


def packet_success_rate(snr_db: ArrayLike, rate: RateInfo, payload_bytes: int = 1400) -> ArrayLike:
    """Complement of :func:`packet_error_rate`."""
    return 1.0 - packet_error_rate(snr_db, rate, payload_bytes)


def average_packet_success_rate(
    mean_snr_db: float,
    rate: RateInfo,
    payload_bytes: int = 1400,
    sigma_db: float = 0.0,
    n_points: int = 33,
) -> float:
    """Delivery rate averaged over Gaussian (dB) SNR variation around a mean.

    Real links measured over many seconds see the SNR wander (residual fading,
    people moving, hardware drift), which softens the otherwise knife-edge
    delivery-vs-SNR curve.  The long-run delivery rate is the expectation of
    the instantaneous success probability over that variation; this helper
    computes it by Gauss-Hermite quadrature over a normal dB perturbation with
    standard deviation ``sigma_db``.
    """
    if sigma_db < 0:
        raise ValueError("sigma must be non-negative")
    if sigma_db == 0.0:
        return float(packet_success_rate(mean_snr_db, rate, payload_bytes))
    nodes, weights = np.polynomial.hermite_e.hermegauss(n_points)
    snr_values = mean_snr_db + sigma_db * nodes
    success = np.asarray(packet_success_rate(snr_values, rate, payload_bytes))
    return float(np.sum(weights * success) / np.sum(weights))
