"""Bitrate adaptation algorithms.

The paper's central argument is that *adaptive bitrate* changes the carrier
sense story: a receiver subject to interference does not lose its link, it
just runs at a somewhat lower rate.  The analytical model captures this with
Shannon capacity; the packet simulator needs concrete adaptation algorithms:

* :class:`FixedRate` -- no adaptation (the "fixed bitrate" strawman the paper
  contrasts against).
* :class:`OracleRateSelector` -- picks the rate that maximises expected
  goodput for a known SINR, i.e. the best any adaptation algorithm could do.
  The Section 4 experiment protocol ("repeat every run at each rate and pick
  the best") is equivalent to this oracle, so the testbed harness uses it.
* :class:`SampleRateAdapter` -- a simplified SampleRate [Bicket05]-style
  online algorithm driven by per-packet transmission feedback, used to show
  that an online adapter converges to nearly the oracle throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from .error_models import packet_success_rate
from .rates import OFDM_RATES, RateInfo, frame_airtime_s

__all__ = [
    "RateSelector",
    "FixedRate",
    "OracleRateSelector",
    "SampleRateAdapter",
    "expected_goodput_bps",
    "best_rate_for_snr",
]


def expected_goodput_bps(
    snr_db: float, rate: RateInfo, payload_bytes: int = 1400
) -> float:
    """Expected goodput (payload bits/s) of repeated transmissions at a rate.

    Goodput is payload bits per expected airtime, accounting for the packet
    success probability at the given SNR.  Retransmission overhead beyond the
    lost airtime itself (backoff, ACK timeouts) is handled by the simulator.
    """
    success = float(packet_success_rate(snr_db, rate, payload_bytes))
    airtime = frame_airtime_s(payload_bytes, rate)
    return success * payload_bytes * 8.0 / airtime


def best_rate_for_snr(
    snr_db: float,
    rates: Sequence[RateInfo] = OFDM_RATES,
    payload_bytes: int = 1400,
) -> RateInfo:
    """The rate with the highest expected goodput at the given SNR."""
    if not rates:
        raise ValueError("rate set must not be empty")
    return max(rates, key=lambda r: expected_goodput_bps(snr_db, r, payload_bytes))


class RateSelector:
    """Interface for bitrate adaptation algorithms used by the simulator."""

    def select(self, link_id: object) -> RateInfo:
        """Choose the rate for the next transmission on ``link_id``."""
        raise NotImplementedError

    def report(self, link_id: object, rate: RateInfo, success: bool, airtime_s: float) -> None:
        """Feed back the outcome of a transmission (default: ignore)."""


@dataclass
class FixedRate(RateSelector):
    """Always transmit at one fixed rate."""

    rate: RateInfo

    def select(self, link_id: object) -> RateInfo:
        return self.rate

    def report(self, link_id: object, rate: RateInfo, success: bool, airtime_s: float) -> None:
        return None


@dataclass
class OracleRateSelector(RateSelector):
    """Select the goodput-maximising rate for a known per-link SNR.

    The SNR map is provided by the caller (typically the testbed harness,
    which can query the channel model directly); unknown links fall back to
    the lowest rate, mirroring a conservative real driver.
    """

    snr_db_by_link: Dict[object, float]
    rates: Sequence[RateInfo] = OFDM_RATES
    payload_bytes: int = 1400

    def select(self, link_id: object) -> RateInfo:
        snr = self.snr_db_by_link.get(link_id)
        if snr is None:
            return min(self.rates, key=lambda r: r.mbps)
        return best_rate_for_snr(snr, self.rates, self.payload_bytes)

    def report(self, link_id: object, rate: RateInfo, success: bool, airtime_s: float) -> None:
        return None


@dataclass
class _LinkRateStats:
    attempts: int = 0
    successes: int = 0
    total_airtime_s: float = 0.0

    def average_tx_time(self) -> Optional[float]:
        if self.successes == 0:
            return None
        return self.total_airtime_s / self.successes


@dataclass
class SampleRateAdapter(RateSelector):
    """Simplified SampleRate bitrate adaptation.

    Tracks, per link and per rate, the average airtime per *successful*
    transmission, normally transmits at the rate with the lowest average, and
    occasionally (with probability ``probe_probability``) probes a different
    rate so the estimates stay fresh.  Rates that have repeatedly failed
    without success are skipped for a while, as in [Bicket05].
    """

    rates: Sequence[RateInfo] = OFDM_RATES
    payload_bytes: int = 1400
    probe_probability: float = 0.1
    failure_blackout: int = 4
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("rate set must not be empty")
        if not 0.0 <= self.probe_probability < 1.0:
            raise ValueError("probe probability must lie in [0, 1)")
        self._stats: Dict[object, Dict[float, _LinkRateStats]] = {}
        self._consecutive_failures: Dict[object, Dict[float, int]] = {}

    def _link_stats(self, link_id: object) -> Dict[float, _LinkRateStats]:
        return self._stats.setdefault(link_id, {r.mbps: _LinkRateStats() for r in self.rates})

    def _link_failures(self, link_id: object) -> Dict[float, int]:
        return self._consecutive_failures.setdefault(link_id, {r.mbps: 0 for r in self.rates})

    def _eligible_rates(self, link_id: object) -> list[RateInfo]:
        failures = self._link_failures(link_id)
        eligible = [r for r in self.rates if failures[r.mbps] < self.failure_blackout]
        return eligible or [min(self.rates, key=lambda r: r.mbps)]

    def select(self, link_id: object) -> RateInfo:
        stats = self._link_stats(link_id)
        eligible = self._eligible_rates(link_id)
        untried = [r for r in eligible if stats[r.mbps].attempts == 0]
        if untried:
            # Start from the slowest untried rate so a fresh link comes up safely.
            return min(untried, key=lambda r: r.mbps)
        if self.rng.random() < self.probe_probability:
            return self.rng.choice(eligible)
        best: Optional[RateInfo] = None
        best_time = float("inf")
        for rate in eligible:
            avg = stats[rate.mbps].average_tx_time()
            if avg is not None and avg < best_time:
                best, best_time = rate, avg
        if best is None:
            return min(eligible, key=lambda r: r.mbps)
        return best

    def report(self, link_id: object, rate: RateInfo, success: bool, airtime_s: float) -> None:
        stats = self._link_stats(link_id)[rate.mbps]
        failures = self._link_failures(link_id)
        stats.attempts += 1
        stats.total_airtime_s += airtime_s
        if success:
            stats.successes += 1
            failures[rate.mbps] = 0
        else:
            failures[rate.mbps] += 1

    def best_known_rate(self, link_id: object) -> Optional[RateInfo]:
        """The rate currently believed best for a link, or None if no successes yet."""
        stats = self._link_stats(link_id)
        candidates = [
            (stats[r.mbps].average_tx_time(), r)
            for r in self.rates
            if stats[r.mbps].average_tx_time() is not None
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda item: item[0])[1]
