"""Shannon-capacity throughput model.

The paper uses the Shannon capacity formula ``C / B = log2(1 + SNR)`` as a
"rough proportional estimate" of the throughput achievable by an adaptive
bitrate radio (Section 2).  Interference is treated the same as background
noise, so the general form is ``log2(1 + S / (N + I))``.

Throughout the analytical model, capacities are in the dimensionless units of
``log2(1 + SNR)`` (bits per second per hertz); the paper normalises plots to
the ``Rmax = 20, D = infinity`` value, and helpers for that normalisation live
in :mod:`repro.core.averaging`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "shannon_capacity",
    "sinr",
    "capacity_from_powers",
    "snr_for_capacity",
    "effective_capacity",
]


def sinr(signal: ArrayLike, noise: ArrayLike, interference: ArrayLike = 0.0) -> ArrayLike:
    """Signal-to-interference-plus-noise ratio from linear powers."""
    s = np.asarray(signal, dtype=float)
    n = np.asarray(noise, dtype=float)
    i = np.asarray(interference, dtype=float)
    if np.any(n <= 0):
        raise ValueError("noise power must be strictly positive")
    if np.any(s < 0) or np.any(i < 0):
        raise ValueError("signal and interference powers must be non-negative")
    result = s / (n + i)
    if all(np.ndim(x) == 0 for x in (signal, noise, interference)):
        return float(result)
    return result


def shannon_capacity(snr: ArrayLike, bandwidth_hz: float = 1.0) -> ArrayLike:
    """Shannon capacity ``B * log2(1 + SNR)``.

    With the default unit bandwidth this returns spectral efficiency in
    bits/s/Hz, which is the unit the analytical model works in.
    """
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    s = np.asarray(snr, dtype=float)
    if np.any(s < 0):
        raise ValueError("SNR must be non-negative")
    result = bandwidth_hz * np.log2(1.0 + s)
    if np.ndim(snr) == 0:
        return float(result)
    return result


def capacity_from_powers(
    signal: ArrayLike,
    noise: ArrayLike,
    interference: ArrayLike = 0.0,
    bandwidth_hz: float = 1.0,
    time_share: float = 1.0,
) -> ArrayLike:
    """Capacity given linear powers, an optional interferer, and a time share.

    ``time_share`` models TDMA-style multiplexing: a sender that holds the
    channel for a fraction ``f`` of the time achieves ``f * log2(1 + SNR)``.
    """
    if not 0.0 <= time_share <= 1.0:
        raise ValueError("time_share must lie in [0, 1]")
    return time_share * shannon_capacity(sinr(signal, noise, interference), bandwidth_hz)


def snr_for_capacity(capacity: ArrayLike, bandwidth_hz: float = 1.0) -> ArrayLike:
    """Invert Shannon capacity: the SNR needed for a given capacity."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    c = np.asarray(capacity, dtype=float)
    if np.any(c < 0):
        raise ValueError("capacity must be non-negative")
    result = np.power(2.0, c / bandwidth_hz) - 1.0
    if np.ndim(capacity) == 0:
        return float(result)
    return result


def effective_capacity(snr: ArrayLike, efficiency: float = 1.0, bandwidth_hz: float = 1.0) -> ArrayLike:
    """Shannon capacity scaled by a constant implementation-efficiency factor.

    The paper assumes real radios achieve "the rough shape of Shannon capacity
    (less by some constant fraction)"; ``efficiency`` is that fraction.
    Because every MAC policy is scaled identically, efficiency ratios -- the
    quantity the paper reports -- are unaffected by this factor.
    """
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must lie in (0, 1]")
    return efficiency * shannon_capacity(snr, bandwidth_hz)
