"""repro: reproduction of "In Defense of Wireless Carrier Sense" (Brodsky, 2009).

The package is organised as:

* :mod:`repro.propagation` -- path loss / shadowing / fading substrate.
* :mod:`repro.capacity`    -- Shannon capacity, 802.11 rates, bitrate adaptation.
* :mod:`repro.core`        -- the analytical carrier-sense model (the paper's
  primary contribution): per-configuration capacities, spatial averaging,
  optimal thresholds, regimes, efficiency tables, landscapes, preferences,
  shadowing analyses.
* :mod:`repro.simulation`  -- packet-level discrete-event wireless simulator
  (CSMA/CA, TDMA, no-CS concurrency, RTS/CTS) used as the testbed substrate.
* :mod:`repro.testbed`     -- synthetic indoor testbed and the Section 4/5
  experiment protocols.
* :mod:`repro.experiments` -- one harness per paper table/figure, each
  registered as a declarative :class:`~repro.api.Experiment`.
* :mod:`repro.scenarios` / :mod:`repro.runner` -- declarative whole-network
  scenarios and the parallel cached batch runner underneath them.
* :mod:`repro.results`     -- the typed columnar :class:`ResultSet` that
  scenario runs produce and sweeps aggregate.
* :mod:`repro.api`         -- the fluent :class:`Study` sweep facade, the
  declarative :class:`Experiment`/:class:`Artifact` layer, and the
  topology/MAC/traffic/experiment extension registries.

Typical entry points::

    from repro.core import Scenario, average_policies
    averages = average_policies(Scenario(rmax=40, d=55), d_threshold=55)
    print(averages.cs_efficiency)

    from repro.api import Study
    results = Study(topology="scale_free", n_nodes=50).seeds(5).run().results()

    import repro.experiments                  # registers the builtin harnesses
    from repro.api import EXPERIMENTS
    artifact = EXPERIMENTS["table-1"].run(n_samples=5000)
"""

from . import constants, units

__version__ = "1.0.0"

__all__ = ["constants", "units", "__version__"]
