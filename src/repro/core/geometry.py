"""Scenario geometry for the two-pair carrier-sense model.

The model scenario (paper Figure 1) consists of two sender-receiver pairs.
Sender 1 sits at the origin; its receiver is uniformly distributed over the
disc of radius ``Rmax`` centred on it.  Sender 2 (the "interferer") sits on
the negative x-axis at distance ``D`` -- polar coordinates ``(D, pi)`` -- with
its own receiver uniformly distributed within ``Rmax`` of *it*.  The two
network-defining free parameters are therefore ``Rmax`` (network range) and
``D`` (sender-sender distance).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..constants import (
    DEFAULT_NOISE_RATIO,
    DEFAULT_PATH_LOSS_EXPONENT,
    DEFAULT_SHADOWING_SIGMA_DB,
)

__all__ = ["Scenario", "interferer_distance", "sample_receiver_positions", "receiver_grid"]


@dataclass(frozen=True)
class Scenario:
    """A fully specified model scenario.

    Parameters
    ----------
    rmax:
        Network range: receivers are uniform over a disc of this radius
        around their sender (normalised distance units).
    d:
        Sender-sender separation.
    alpha:
        Path-loss exponent.
    sigma_db:
        Lognormal shadowing standard deviation (dB); 0 gives the simplified
        deterministic model of Section 3.3.
    noise:
        Normalised noise floor ``N = N0 / P0`` as a linear ratio
        (default 10**(-6.5), i.e. -65 dB).
    """

    rmax: float
    d: float
    alpha: float = DEFAULT_PATH_LOSS_EXPONENT
    sigma_db: float = DEFAULT_SHADOWING_SIGMA_DB
    noise: float = DEFAULT_NOISE_RATIO

    def __post_init__(self) -> None:
        if self.rmax <= 0:
            raise ValueError("rmax must be positive")
        if self.d <= 0:
            raise ValueError("sender separation d must be positive")
        if self.alpha <= 0:
            raise ValueError("path-loss exponent must be positive")
        if self.sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")
        if self.noise <= 0:
            raise ValueError("noise must be positive")

    def without_shadowing(self) -> "Scenario":
        """The same scenario with shadowing disabled (sigma = 0)."""
        return replace(self, sigma_db=0.0)

    def with_d(self, d: float) -> "Scenario":
        """The same scenario at a different sender separation."""
        return replace(self, d=d)

    def with_rmax(self, rmax: float) -> "Scenario":
        """The same scenario with a different network range."""
        return replace(self, rmax=rmax)

    @property
    def edge_snr_db(self) -> float:
        """Mean SNR (dB) of a receiver at the edge of the network range."""
        return float(10.0 * np.log10(self.rmax**-self.alpha / self.noise))


def interferer_distance(r, theta, d):
    """Distance from a receiver at polar ``(r, theta)`` to the interferer.

    The interferer is at Cartesian ``(-d, 0)``, so

        delta_r = sqrt((r cos(theta) + d)^2 + (r sin(theta))^2)

    exactly as in Section 3.2.2.
    """
    r = np.asarray(r, dtype=float)
    theta = np.asarray(theta, dtype=float)
    return np.sqrt((r * np.cos(theta) + d) ** 2 + (r * np.sin(theta)) ** 2)


def sample_receiver_positions(
    rmax: float, n: int, rng: np.random.Generator, r_min: float = 1e-3
):
    """Sample ``n`` receiver positions uniformly over the disc of radius ``rmax``.

    Returns ``(r, theta)`` arrays.  A tiny ``r_min`` keeps samples off the
    singular point at the transmitter itself, which the paper notes is "of
    little practical significance".
    """
    if n <= 0:
        raise ValueError("need at least one sample")
    if rmax <= 0:
        raise ValueError("rmax must be positive")
    u = rng.uniform(0.0, 1.0, size=n)
    r = np.maximum(np.sqrt(u) * rmax, r_min)
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    return r, theta


def receiver_grid(rmax: float, n_r: int, n_theta: int, r_min: float = 1e-3):
    """Deterministic area-weighted grid over the receiver disc.

    Returns ``(r, theta, weights)`` flattened arrays where the weights sum to
    one and implement the ``1/(pi Rmax^2) * integral ... r dr dtheta`` measure
    via the midpoint rule in ``r**2`` (uniform-area rings) and ``theta``.
    Used for the deterministic (sigma = 0) integration path.
    """
    if n_r <= 0 or n_theta <= 0:
        raise ValueError("grid sizes must be positive")
    # Midpoints of equal-area rings: r_k = Rmax * sqrt((k + 0.5) / n_r).
    ring_index = np.arange(n_r) + 0.5
    r_nodes = rmax * np.sqrt(ring_index / n_r)
    r_nodes = np.maximum(r_nodes, r_min)
    theta_nodes = (np.arange(n_theta) + 0.5) * (2.0 * np.pi / n_theta)
    r_mesh, theta_mesh = np.meshgrid(r_nodes, theta_nodes, indexing="ij")
    weights = np.full(r_mesh.size, 1.0 / (n_r * n_theta))
    return r_mesh.ravel(), theta_mesh.ravel(), weights
