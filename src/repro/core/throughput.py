"""Per-configuration throughput formulas of the analytical model.

These are the capacity expressions of Section 3.2.2, vectorised over arrays of
receiver positions and (optionally) shadowing draws:

* ``c_single``        -- a lone sender, no competition.
* ``c_multiplexing``  -- ideal TDMA: half of ``c_single``.
* ``c_concurrent``    -- both senders transmit; the interferer's power adds to
  the noise at the receiver.
* ``c_carrier_sense`` -- piecewise: multiplexing when the sensed interferer
  power exceeds the threshold, concurrency otherwise.
* ``c_optimal_pair``  -- the oracle MAC: per configuration of *both* pairs,
  the better of concurrency and equal-share multiplexing (Cmax).
* ``c_upper_bound``   -- per-receiver max of concurrency and multiplexing
  (CUBmax), a convenient upper bound on the oracle.

All capacities are Shannon spectral efficiencies, ``log2(1 + SINR)``.
The natural-vs-base-2 logarithm choice only scales every policy identically,
so efficiency ratios match the paper regardless.
"""

from __future__ import annotations

import numpy as np

from ..capacity.shannon import shannon_capacity
from .geometry import interferer_distance

__all__ = [
    "c_single",
    "c_multiplexing",
    "c_concurrent",
    "sensed_power",
    "carrier_sense_defers",
    "c_carrier_sense",
    "c_upper_bound",
    "c_optimal_pair",
    "threshold_power_from_distance",
    "threshold_distance_from_power",
]


def c_single(r, alpha, noise, shadowing_gain=1.0):
    """Capacity of a lone sender-receiver pair at distance ``r``."""
    r = np.asarray(r, dtype=float)
    snr = np.power(r, -alpha) * shadowing_gain / noise
    return shannon_capacity(snr)


def c_multiplexing(r, alpha, noise, shadowing_gain=1.0):
    """Per-pair capacity under ideal two-way time-division multiplexing."""
    return 0.5 * c_single(r, alpha, noise, shadowing_gain)


def c_concurrent(
    r,
    theta,
    d,
    alpha,
    noise,
    shadowing_gain=1.0,
    interferer_shadowing_gain=1.0,
):
    """Per-pair capacity when both senders transmit concurrently.

    The interferer sits at distance ``delta_r`` from the receiver and its
    power (with its own independent shadowing draw) adds to the noise floor.
    """
    r = np.asarray(r, dtype=float)
    delta_r = interferer_distance(r, theta, d)
    interference = np.power(delta_r, -alpha) * interferer_shadowing_gain
    snr = np.power(r, -alpha) * shadowing_gain / (noise + interference)
    return shannon_capacity(snr)


def threshold_power_from_distance(d_threshold: float, alpha: float) -> float:
    """Sense-power threshold equivalent to a threshold distance.

    ``Pthreshold = Dthreshold ** -alpha`` (paper Section 3.2.2, where it is
    written as ``Dthreshold = Pthreshold ** (1 / alpha)`` for the reciprocal
    relation in the absence of shadowing).
    """
    if d_threshold <= 0:
        raise ValueError("threshold distance must be positive")
    return float(d_threshold**-alpha)


def threshold_distance_from_power(p_threshold: float, alpha: float) -> float:
    """Inverse of :func:`threshold_power_from_distance`."""
    if p_threshold <= 0:
        raise ValueError("threshold power must be positive")
    return float(p_threshold ** (-1.0 / alpha))


def sensed_power(d, alpha, sense_shadowing_gain=1.0):
    """Interferer power observed at the sender: ``D ** -alpha * L''``."""
    d = np.asarray(d, dtype=float)
    return np.power(d, -alpha) * sense_shadowing_gain


def carrier_sense_defers(d, d_threshold, alpha, sense_shadowing_gain=1.0):
    """Whether carrier sense chooses to defer (multiplex) for each sample.

    Defer when the sensed power exceeds the threshold power, i.e.
    ``D ** -alpha * L'' > Dthreshold ** -alpha``.
    """
    p_threshold = threshold_power_from_distance(d_threshold, alpha)
    return np.asarray(sensed_power(d, alpha, sense_shadowing_gain)) > p_threshold


def c_carrier_sense(
    r,
    theta,
    d,
    d_threshold,
    alpha,
    noise,
    shadowing_gain=1.0,
    interferer_shadowing_gain=1.0,
    sense_shadowing_gain=1.0,
):
    """Per-pair carrier-sense capacity for each sampled configuration.

    The decision depends only on the sensed sender-sender power (with its own
    shadowing draw); the outcome applies the concurrency or multiplexing
    capacity accordingly.
    """
    defer = carrier_sense_defers(d, d_threshold, alpha, sense_shadowing_gain)
    mux = c_multiplexing(r, alpha, noise, shadowing_gain)
    conc = c_concurrent(
        r, theta, d, alpha, noise, shadowing_gain, interferer_shadowing_gain
    )
    return np.where(defer, mux, conc)


def c_upper_bound(
    r,
    theta,
    d,
    alpha,
    noise,
    shadowing_gain=1.0,
    interferer_shadowing_gain=1.0,
):
    """CUBmax: per-receiver best of concurrency and multiplexing."""
    mux = c_multiplexing(r, alpha, noise, shadowing_gain)
    conc = c_concurrent(
        r, theta, d, alpha, noise, shadowing_gain, interferer_shadowing_gain
    )
    return np.maximum(mux, conc)


def c_optimal_pair(
    r1,
    theta1,
    r2,
    theta2,
    d,
    alpha,
    noise,
    shadowing_gain_1=1.0,
    interferer_shadowing_gain_1=1.0,
    shadowing_gain_2=1.0,
    interferer_shadowing_gain_2=1.0,
):
    """Cmax: oracle per-sender capacity considering both pairs jointly.

    The oracle chooses, per configuration, whichever of "both concurrent" and
    "equal-share multiplexing" maximises the *sum* of the two pairs'
    throughputs, then the result is reported per sender (divide by two), which
    is the quantity comparable to the per-pair policies above.
    """
    conc_1 = c_concurrent(
        r1, theta1, d, alpha, noise, shadowing_gain_1, interferer_shadowing_gain_1
    )
    conc_2 = c_concurrent(
        r2, theta2, d, alpha, noise, shadowing_gain_2, interferer_shadowing_gain_2
    )
    mux_1 = c_multiplexing(r1, alpha, noise, shadowing_gain_1)
    mux_2 = c_multiplexing(r2, alpha, noise, shadowing_gain_2)
    return 0.5 * np.maximum(conc_1 + conc_2, mux_1 + mux_2)
