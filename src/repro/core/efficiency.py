"""Carrier-sense efficiency tables (Tables 1 and 2 of Section 3.2.5).

The paper reports carrier-sense throughput as a percentage of the optimal MAC
throughput across a representative grid of network range ``Rmax`` and sender
separation ``D``, first with a fixed factory threshold (Dthresh = 55), then
with per-scenario optimised thresholds.  Both tables are regenerated here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from ..constants import (
    DEFAULT_DTHRESHOLD,
    DEFAULT_NOISE_RATIO,
    DEFAULT_PATH_LOSS_EXPONENT,
    DEFAULT_SHADOWING_SIGMA_DB,
    TABLE_D_VALUES,
    TABLE_RMAX_VALUES,
)
from .averaging import PolicyAverages, average_policies
from .geometry import Scenario
from .thresholds import optimal_threshold

__all__ = ["EfficiencyCell", "EfficiencyTable", "fixed_threshold_table", "tuned_threshold_table"]


@dataclass(frozen=True)
class EfficiencyCell:
    """One (Rmax, D) cell of an efficiency table."""

    rmax: float
    d: float
    d_threshold: float
    averages: PolicyAverages

    @property
    def efficiency(self) -> float:
        """Carrier-sense throughput divided by oracle throughput."""
        return self.averages.cs_efficiency

    @property
    def efficiency_percent(self) -> float:
        return 100.0 * self.efficiency


@dataclass(frozen=True)
class EfficiencyTable:
    """A grid of efficiency cells indexed by (Rmax, D)."""

    rmax_values: tuple[float, ...]
    d_values: tuple[float, ...]
    cells: Mapping[tuple[float, float], EfficiencyCell]
    thresholds_by_rmax: Mapping[float, float]

    def cell(self, rmax: float, d: float) -> EfficiencyCell:
        return self.cells[(rmax, d)]

    def efficiency_matrix(self) -> np.ndarray:
        """Efficiencies as a (len(rmax_values), len(d_values)) array of fractions."""
        matrix = np.empty((len(self.rmax_values), len(self.d_values)))
        for i, rmax in enumerate(self.rmax_values):
            for j, d in enumerate(self.d_values):
                matrix[i, j] = self.cells[(rmax, d)].efficiency
        return matrix

    def minimum_efficiency(self) -> float:
        return float(self.efficiency_matrix().min())

    def format_markdown(self) -> str:
        """Render the table in the same layout the paper uses."""
        header = "| Rmax \\ D | " + " | ".join(f"{d:g}" for d in self.d_values) + " |"
        separator = "|" + "---|" * (len(self.d_values) + 1)
        rows = [header, separator]
        for rmax in self.rmax_values:
            label = f"{rmax:g} (Dthresh = {self.thresholds_by_rmax[rmax]:.0f})"
            cells = " | ".join(
                f"{self.cells[(rmax, d)].efficiency_percent:.0f}%" for d in self.d_values
            )
            rows.append(f"| {label} | {cells} |")
        return "\n".join(rows)


def _build_table(
    rmax_values: Sequence[float],
    d_values: Sequence[float],
    thresholds_by_rmax: Mapping[float, float],
    alpha: float,
    sigma_db: float,
    noise: float,
    n_samples: int,
    seed: int | None,
) -> EfficiencyTable:
    cells: Dict[tuple[float, float], EfficiencyCell] = {}
    for rmax in rmax_values:
        threshold = thresholds_by_rmax[rmax]
        for d in d_values:
            scenario = Scenario(rmax=rmax, d=d, alpha=alpha, sigma_db=sigma_db, noise=noise)
            averages = average_policies(
                scenario, threshold, n_samples=n_samples, seed=seed, method="montecarlo"
            )
            cells[(rmax, d)] = EfficiencyCell(rmax, d, threshold, averages)
    return EfficiencyTable(
        rmax_values=tuple(rmax_values),
        d_values=tuple(d_values),
        cells=cells,
        thresholds_by_rmax=dict(thresholds_by_rmax),
    )


def fixed_threshold_table(
    rmax_values: Sequence[float] = TABLE_RMAX_VALUES,
    d_values: Sequence[float] = TABLE_D_VALUES,
    d_threshold: float = DEFAULT_DTHRESHOLD,
    alpha: float = DEFAULT_PATH_LOSS_EXPONENT,
    sigma_db: float = DEFAULT_SHADOWING_SIGMA_DB,
    noise: float = DEFAULT_NOISE_RATIO,
    n_samples: int = 20_000,
    seed: int | None = 0,
) -> EfficiencyTable:
    """Table 1: carrier-sense efficiency with a single fixed threshold."""
    thresholds = {float(rmax): float(d_threshold) for rmax in rmax_values}
    return _build_table(
        [float(r) for r in rmax_values],
        [float(d) for d in d_values],
        thresholds,
        alpha,
        sigma_db,
        noise,
        n_samples,
        seed,
    )


def tuned_threshold_table(
    rmax_values: Sequence[float] = TABLE_RMAX_VALUES,
    d_values: Sequence[float] = TABLE_D_VALUES,
    alpha: float = DEFAULT_PATH_LOSS_EXPONENT,
    sigma_db: float = DEFAULT_SHADOWING_SIGMA_DB,
    noise: float = DEFAULT_NOISE_RATIO,
    n_samples: int = 20_000,
    seed: int | None = 0,
    thresholds_by_rmax: Mapping[float, float] | None = None,
) -> EfficiencyTable:
    """Table 2: efficiency with per-scenario (per-Rmax) optimised thresholds.

    By default the thresholds are recomputed with the Section 3.3.3 criterion
    (crossing of the averaged concurrency and multiplexing curves); the
    paper's own values (40, 55, 60 for Rmax = 20, 40, 120) can be supplied
    explicitly via ``thresholds_by_rmax`` for an exact-layout reproduction.
    """
    rmax_values = [float(r) for r in rmax_values]
    if thresholds_by_rmax is None:
        thresholds_by_rmax = {
            rmax: optimal_threshold(
                rmax, alpha, noise, sigma_db=0.0, n_samples=n_samples, seed=seed
            )
            for rmax in rmax_values
        }
    else:
        thresholds_by_rmax = {float(k): float(v) for k, v in thresholds_by_rmax.items()}
    return _build_table(
        rmax_values,
        [float(d) for d in d_values],
        thresholds_by_rmax,
        alpha,
        sigma_db,
        noise,
        n_samples,
        seed,
    )
