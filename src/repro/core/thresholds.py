"""Optimal carrier-sense thresholds and the short/long-range regime analysis.

Section 3.3.3 shows that, in the deterministic model, the threshold that
maximises average carrier-sense throughput for *every* D simultaneously is the
sender separation at which the average concurrency and multiplexing curves
cross.  This module solves for that crossing, provides the short-range
closed-form approximation from footnote 13, classifies networks into the
short / intermediate / long-range regimes of Section 3.3.3, and computes the
"split the difference" factory threshold recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np
from scipy import optimize

from ..constants import (
    LONG_RANGE_THRESHOLD_RATIO,
    SHORT_RANGE_THRESHOLD_RATIO,
)
from .averaging import ConfigurationSamples, _evaluate, _quadrature_samples, draw_configuration
from .geometry import Scenario

__all__ = [
    "optimal_threshold",
    "short_range_threshold_approx",
    "classify_regime",
    "regime_boundaries",
    "recommended_factory_threshold",
    "threshold_curve",
    "ThresholdCurvePoint",
]


def _concurrency_minus_multiplexing(
    d: float, scenario: Scenario, samples: ConfigurationSamples
) -> float:
    averages = _evaluate(scenario.with_d(d), d_threshold=1.0, samples=samples)
    return averages.concurrent - averages.multiplexing


def optimal_threshold(
    rmax: float,
    alpha: float,
    noise: float,
    sigma_db: float = 0.0,
    d_bounds: tuple[float, float] = (1.0, 2000.0),
    n_samples: int = 20_000,
    seed: int | None = 0,
) -> float:
    """The throughput-optimal threshold distance for a given network.

    Defined (Section 3.3.3) as the sender separation D at which the average
    concurrency and multiplexing capacities cross.  With shadowing the notion
    of a unique optimum blurs (footnote 16), but the crossing of the averaged
    curves remains the paper's working definition and is what Figure 7 plots.

    Raises ``ValueError`` if no crossing exists inside ``d_bounds`` (e.g. in
    the "extreme long range" CDMA regime where concurrency always wins).
    """
    scenario = Scenario(rmax=rmax, d=d_bounds[0], alpha=alpha, sigma_db=sigma_db, noise=noise)
    if sigma_db == 0.0:
        samples = _quadrature_samples(rmax)
    else:
        samples = draw_configuration(rmax, n_samples, np.random.default_rng(seed))

    lo, hi = d_bounds
    f_lo = _concurrency_minus_multiplexing(lo, scenario, samples)
    f_hi = _concurrency_minus_multiplexing(hi, scenario, samples)
    if f_lo > 0:
        raise ValueError(
            "concurrency already beats multiplexing at the lower bound; "
            "no threshold crossing (extreme long range / CDMA regime)"
        )
    if f_hi < 0:
        raise ValueError(
            "multiplexing still beats concurrency at the upper bound; widen d_bounds"
        )
    return float(
        optimize.brentq(
            _concurrency_minus_multiplexing, lo, hi, args=(scenario, samples), xtol=1e-3
        )
    )


def short_range_threshold_approx(rmax: float, alpha: float, noise: float) -> float:
    """Closed-form short-range limit of the optimal threshold (footnote 13).

    ``Dthreshold ~= e^(-1/4) * Rmax^(1/2) * N^(-1/(2 alpha))`` in actual
    distance units, derived by letting the noise floor vanish and
    approximating the interferer-receiver distance by the threshold itself.
    """
    if rmax <= 0 or alpha <= 0 or noise <= 0:
        raise ValueError("rmax, alpha, and noise must all be positive")
    return float(np.exp(-0.25) * np.sqrt(rmax) * noise ** (-1.0 / (2.0 * alpha)))


def classify_regime(rmax: float, r_threshold: float) -> str:
    """Classify a network as ``"short"``, ``"intermediate"``, or ``"long"`` range.

    Section 3.3.3: ``Rthresh < Rmax`` marks genuine long range, while
    ``Rthresh > 2 Rmax`` marks true short range; in between lies the
    intermediate "sweet spot" regime where commodity hardware operates.
    """
    if rmax <= 0 or r_threshold <= 0:
        raise ValueError("rmax and r_threshold must be positive")
    if r_threshold < LONG_RANGE_THRESHOLD_RATIO * rmax:
        return "long"
    if r_threshold > SHORT_RANGE_THRESHOLD_RATIO * rmax:
        return "short"
    return "intermediate"


def regime_boundaries(
    alpha: float,
    noise: float,
    sigma_db: float = 8.0,
    rmax_bounds: tuple[float, float] = (5.0, 250.0),
    n_samples: int = 20_000,
    seed: int | None = 0,
) -> Dict[str, float]:
    """Find the Rmax values where the regime classification changes.

    Returns ``{"short_below": ..., "long_above": ...}``: networks with
    ``Rmax`` below the first value are short range (``Rthresh > 2 Rmax``) and
    above the second are long range (``Rthresh < Rmax``).  For alpha = 3 the
    paper quotes roughly 18 < Rmax < 60 for the intermediate band.
    """

    def threshold_ratio_minus(target: float, rmax: float) -> float:
        thresh = optimal_threshold(rmax, alpha, noise, sigma_db, n_samples=n_samples, seed=seed)
        return thresh - target * rmax

    lo, hi = rmax_bounds
    short_boundary = optimize.brentq(
        lambda rmax: threshold_ratio_minus(SHORT_RANGE_THRESHOLD_RATIO, rmax), lo, hi, xtol=0.5
    )
    long_boundary = optimize.brentq(
        lambda rmax: threshold_ratio_minus(LONG_RANGE_THRESHOLD_RATIO, rmax), lo, hi, xtol=0.5
    )
    return {"short_below": float(short_boundary), "long_above": float(long_boundary)}


def recommended_factory_threshold(
    rmax_low: float,
    rmax_high: float,
    alpha: float,
    noise: float,
    sigma_db: float = 0.0,
    n_samples: int = 20_000,
    seed: int | None = 0,
) -> float:
    """'Split the difference' factory threshold of Section 3.3.3.

    Computes the optimal thresholds at the two ends of the hardware's usable
    operating range and returns their midpoint.  For the paper's 802.11g
    example (Rmax = 20 .. 120, alpha = 3) the endpoints are roughly 40 and 75
    and the recommendation lands near Dthresh = 55.
    """
    t_low = optimal_threshold(rmax_low, alpha, noise, sigma_db, n_samples=n_samples, seed=seed)
    t_high = optimal_threshold(rmax_high, alpha, noise, sigma_db, n_samples=n_samples, seed=seed)
    return 0.5 * (t_low + t_high)


@dataclass(frozen=True)
class ThresholdCurvePoint:
    """One point of the Figure 7 optimal-threshold-vs-Rmax curve."""

    rmax: float
    alpha: float
    sigma_db: float
    optimal_d_threshold: float
    equivalent_d_threshold_alpha3: float
    regime: str


def threshold_curve(
    rmax_values: Sequence[float],
    alpha: float,
    noise: float,
    sigma_db: float = 8.0,
    n_samples: int = 20_000,
    seed: int | None = 0,
) -> list[ThresholdCurvePoint]:
    """Optimal threshold versus network radius for one propagation exponent.

    For cross-alpha comparability, Figure 7 expresses every threshold as the
    *equivalent distance at alpha = 3*: the distance at which an alpha = 3
    path would produce the same sense power, ``Dthresh ** (alpha / 3)``.

    Network sizes that fall into the "extreme long range" regime (footnote 11
    of the paper), where concurrency is unconditionally optimal and no
    threshold crossing exists, are skipped rather than reported.
    """
    points: list[ThresholdCurvePoint] = []
    for rmax in rmax_values:
        try:
            d_opt = optimal_threshold(
                float(rmax), alpha, noise, sigma_db, n_samples=n_samples, seed=seed
            )
        except ValueError:
            # No concurrency/multiplexing crossing: the CDMA-like regime the
            # paper explicitly leaves out of Figure 7.
            continue
        equivalent = d_opt ** (alpha / 3.0)
        points.append(
            ThresholdCurvePoint(
                rmax=float(rmax),
                alpha=alpha,
                sigma_db=sigma_db,
                optimal_d_threshold=d_opt,
                equivalent_d_threshold_alpha3=float(equivalent),
                regime=classify_regime(float(rmax), d_opt),
            )
        )
    return points
