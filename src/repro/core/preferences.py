"""Receiver preference-region maps (Figure 3).

Figure 3 classifies every possible receiver position by which MAC choice it
prefers when an interferer sits at distance ``D``:

* **prefer concurrency** -- concurrent capacity exceeds the multiplexing
  capacity at that position (dark grey in the paper's figure);
* **prefer multiplexing** -- the reverse (light grey);
* **starved** -- the receiver prefers multiplexing *and* would receive less
  than 10 % of its CUBmax capacity under concurrency (white): these are the
  genuine "hidden terminal" victims of Section 3.3.3.

The paper's figure covers receivers over a square around the sender; this
module classifies either a Cartesian grid or a disc of radius ``Rmax`` and
reports the area fractions, which is what the tests and benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    DEFAULT_NOISE_RATIO,
    DEFAULT_PATH_LOSS_EXPONENT,
    STARVATION_FRACTION,
)
from .geometry import receiver_grid
from .throughput import c_concurrent, c_multiplexing

__all__ = ["PreferenceMap", "PreferenceFractions", "preference_map", "preference_fractions"]

#: Integer codes used in the classification grid.
PREFER_CONCURRENCY = 0
PREFER_MULTIPLEXING = 1
STARVED = 2


@dataclass(frozen=True)
class PreferenceMap:
    """Classification of receiver positions over a Cartesian grid."""

    x: np.ndarray
    y: np.ndarray
    classification: np.ndarray
    d: float
    alpha: float
    noise: float
    starvation_fraction: float

    def fraction(self, code: int, within_radius: float | None = None) -> float:
        """Area fraction with a given classification, optionally within a disc."""
        mask = np.ones_like(self.classification, dtype=bool)
        if within_radius is not None:
            xx, yy = np.meshgrid(self.x, self.y, indexing="ij")
            mask = np.hypot(xx, yy) <= within_radius
        total = int(mask.sum())
        if total == 0:
            return 0.0
        return float(np.sum((self.classification == code) & mask) / total)


@dataclass(frozen=True)
class PreferenceFractions:
    """Area fractions of each preference class within a disc of radius Rmax."""

    rmax: float
    d: float
    prefer_concurrency: float
    prefer_multiplexing: float
    starved: float

    @property
    def prefer_multiplexing_total(self) -> float:
        """All receivers preferring multiplexing, including the starved ones."""
        return self.prefer_multiplexing + self.starved

    @property
    def dominant_choice(self) -> str:
        """Which single choice satisfies the majority of receivers."""
        if self.prefer_concurrency >= self.prefer_multiplexing_total:
            return "concurrency"
        return "multiplexing"


def _classify(conc: np.ndarray, mux: np.ndarray, starvation_fraction: float) -> np.ndarray:
    upper = np.maximum(conc, mux)
    prefer_mux = mux > conc
    starved = prefer_mux & (conc < starvation_fraction * upper)
    classification = np.full(conc.shape, PREFER_CONCURRENCY, dtype=int)
    classification[prefer_mux] = PREFER_MULTIPLEXING
    classification[starved] = STARVED
    return classification


def preference_map(
    d: float,
    extent: float = 150.0,
    resolution: int = 151,
    alpha: float = DEFAULT_PATH_LOSS_EXPONENT,
    noise: float = DEFAULT_NOISE_RATIO,
    starvation_fraction: float = STARVATION_FRACTION,
    r_min: float = 0.5,
) -> PreferenceMap:
    """Classify receiver positions on a Cartesian grid (Figure 3 style)."""
    if d <= 0:
        raise ValueError("interferer distance must be positive")
    x = np.linspace(-extent, extent, resolution)
    y = np.linspace(-extent, extent, resolution)
    xx, yy = np.meshgrid(x, y, indexing="ij")
    r = np.maximum(np.hypot(xx, yy), r_min)
    theta = np.arctan2(yy, xx)
    conc = np.asarray(c_concurrent(r, theta, d, alpha, noise))
    mux = np.asarray(c_multiplexing(r, alpha, noise))
    classification = _classify(conc, mux, starvation_fraction)
    return PreferenceMap(x, y, classification, float(d), alpha, noise, starvation_fraction)


def preference_fractions(
    rmax: float,
    d: float,
    alpha: float = DEFAULT_PATH_LOSS_EXPONENT,
    noise: float = DEFAULT_NOISE_RATIO,
    starvation_fraction: float = STARVATION_FRACTION,
    n_r: int = 200,
    n_theta: int = 256,
) -> PreferenceFractions:
    """Preference-class area fractions within the network disc of radius Rmax."""
    if rmax <= 0 or d <= 0:
        raise ValueError("rmax and d must be positive")
    r, theta, weights = receiver_grid(rmax, n_r, n_theta)
    conc = np.asarray(c_concurrent(r, theta, d, alpha, noise))
    mux = np.asarray(c_multiplexing(r, alpha, noise))
    classification = _classify(conc, mux, starvation_fraction)
    return PreferenceFractions(
        rmax=rmax,
        d=d,
        prefer_concurrency=float(np.sum(weights[classification == PREFER_CONCURRENCY])),
        prefer_multiplexing=float(np.sum(weights[classification == PREFER_MULTIPLEXING])),
        starved=float(np.sum(weights[classification == STARVED])),
    )
