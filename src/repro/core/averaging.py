"""Spatial averaging of the per-configuration capacities.

The paper's headline quantities are *expected* throughputs,

    <Ci>(Rmax, D) = 1 / (pi Rmax^2) * integral over the receiver disc of Ci,

evaluated numerically (the paper used Maple Monte-Carlo integration).  Two
integration paths are provided:

* ``method="quadrature"`` -- a deterministic equal-area grid over the disc.
  Only valid for the simplified sigma = 0 model, where capacity is a smooth
  deterministic function of position.
* ``method="montecarlo"`` -- uniform random receiver positions plus
  independent lognormal shadowing draws for every link.  This is the general
  path and the one used for every table/figure involving shadowing.

For sweeps over ``D`` (the throughput-vs-distance curves of Figures 4, 5, 6,
and 9) the same receiver positions and shadowing draws are reused at every
``D`` (common random numbers), which makes the sampled curves smooth and the
concurrency/multiplexing crossing well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Sequence

import numpy as np

from ..units import db_to_linear
from .geometry import Scenario, receiver_grid, sample_receiver_positions
from .throughput import (
    c_carrier_sense,
    c_concurrent,
    c_multiplexing,
    c_optimal_pair,
    c_single,
    c_upper_bound,
    carrier_sense_defers,
)

__all__ = [
    "PolicyAverages",
    "ConfigurationSamples",
    "draw_configuration",
    "average_policies",
    "single_sender_average",
    "normalization_capacity",
    "throughput_curves",
]

#: Default Monte-Carlo sample count.  Chosen so that the Table 1 percentages
#: are stable to about +/-1 point, matching the paper's reporting resolution.
DEFAULT_SAMPLES = 20_000


@dataclass(frozen=True)
class PolicyAverages:
    """Expected per-sender capacities under each MAC policy for one scenario."""

    scenario: Scenario
    d_threshold: float
    single: float
    multiplexing: float
    concurrent: float
    carrier_sense: float
    optimal: float
    upper_bound: float
    defer_probability: float
    n_samples: int

    @property
    def cs_efficiency(self) -> float:
        """Carrier-sense throughput as a fraction of the oracle throughput."""
        return self.carrier_sense / self.optimal

    @property
    def best_static_policy(self) -> str:
        """Which non-adaptive policy (concurrency or multiplexing) wins on average."""
        return "concurrency" if self.concurrent >= self.multiplexing else "multiplexing"

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view of the averages (useful for tabulation)."""
        return {
            "single": self.single,
            "multiplexing": self.multiplexing,
            "concurrent": self.concurrent,
            "carrier_sense": self.carrier_sense,
            "optimal": self.optimal,
            "upper_bound": self.upper_bound,
        }


@dataclass
class ConfigurationSamples:
    """A reusable batch of sampled receiver positions and shadowing draws.

    Shadowing is stored in dB so that the same draws can be reused across
    scenarios that differ only in ``sigma_db`` (scale the dB values) or in
    ``D`` (no dependence at all).
    """

    r1: np.ndarray
    theta1: np.ndarray
    r2: np.ndarray
    theta2: np.ndarray
    unit_shadow_db: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        self._gain_cache: Dict[float, Dict[str, np.ndarray]] = {}

    @property
    def n(self) -> int:
        return int(self.r1.size)

    def shadow_gains(self, sigma_db: float) -> Dict[str, np.ndarray]:
        """Linear shadowing gains for the given sigma (1.0 everywhere if zero).

        The conversion is vectorised over all links at once and memoised per
        sigma: sweeps over ``D`` or the threshold (Figures 4-9, the Figure 7
        crossing search) re-evaluate the same sample batch at every sweep
        point, and the lognormal exponentiations dominated that inner loop.
        Callers must treat the returned arrays as read-only.
        """
        sigma_db = float(sigma_db)
        cached = self._gain_cache.get(sigma_db)
        if cached is not None:
            return cached
        if sigma_db == 0.0:
            ones = np.ones(self.n)
            gains = {key: ones for key in self.unit_shadow_db}
        else:
            keys = list(self.unit_shadow_db)
            stacked = np.stack([self.unit_shadow_db[key] for key in keys])
            linear = np.asarray(db_to_linear(sigma_db * stacked))
            gains = {key: linear[row] for row, key in enumerate(keys)}
        self._gain_cache[sigma_db] = gains
        return gains


_SHADOW_KEYS = ("s1_r1", "s2_r1", "s2_r2", "s1_r2", "sense")


def draw_configuration(
    rmax: float, n_samples: int, rng: np.random.Generator
) -> ConfigurationSamples:
    """Draw receiver positions for both pairs plus unit-variance shadowing.

    The per-link shadowing draws are batched into a single ``(5, n)`` normal
    draw; the generator consumes variates sequentially, so row ``k`` equals
    the ``k``-th per-key draw of the unbatched formulation and existing seeds
    reproduce bit-identical samples.
    """
    r1, theta1 = sample_receiver_positions(rmax, n_samples, rng)
    r2, theta2 = sample_receiver_positions(rmax, n_samples, rng)
    draws = rng.standard_normal((len(_SHADOW_KEYS), n_samples))
    unit_shadow = {key: draws[row] for row, key in enumerate(_SHADOW_KEYS)}
    return ConfigurationSamples(r1, theta1, r2, theta2, unit_shadow)


def _evaluate(
    scenario: Scenario, d_threshold: float, samples: ConfigurationSamples
) -> PolicyAverages:
    """Evaluate every policy on a batch of sampled configurations."""
    gains = samples.shadow_gains(scenario.sigma_db)
    alpha, noise, d = scenario.alpha, scenario.noise, scenario.d

    single = c_single(samples.r1, alpha, noise, gains["s1_r1"])
    mux = 0.5 * single
    conc = c_concurrent(
        samples.r1, samples.theta1, d, alpha, noise, gains["s1_r1"], gains["s2_r1"]
    )
    cs = c_carrier_sense(
        samples.r1,
        samples.theta1,
        d,
        d_threshold,
        alpha,
        noise,
        gains["s1_r1"],
        gains["s2_r1"],
        gains["sense"],
    )
    ub = np.maximum(mux, conc)
    optimal = c_optimal_pair(
        samples.r1,
        samples.theta1,
        samples.r2,
        samples.theta2,
        d,
        alpha,
        noise,
        gains["s1_r1"],
        gains["s2_r1"],
        gains["s2_r2"],
        gains["s1_r2"],
    )
    defers = carrier_sense_defers(d, d_threshold, alpha, gains["sense"])

    return PolicyAverages(
        scenario=scenario,
        d_threshold=d_threshold,
        single=float(np.mean(single)),
        multiplexing=float(np.mean(mux)),
        concurrent=float(np.mean(conc)),
        carrier_sense=float(np.mean(cs)),
        optimal=float(np.mean(optimal)),
        upper_bound=float(np.mean(ub)),
        defer_probability=float(np.mean(defers)),
        n_samples=samples.n,
    )


def _quadrature_samples(rmax: float, n_r: int = 160, n_theta: int = 128) -> ConfigurationSamples:
    """Deterministic grid 'samples' (equal weights) for the sigma = 0 path.

    The per-pair policies (single, multiplexing, concurrency, carrier sense,
    CUBmax) are exact integrals over the grid.  The joint "optimal" policy
    needs an expectation over *independent* receiver positions; pairing each
    grid point with the point a large, co-prime offset away in the flattened
    grid keeps both marginals exact while decorrelating the pairing, which is
    accurate to well under a percent for the grid sizes used here.
    """
    r, theta, _weights = receiver_grid(rmax, n_r, n_theta)
    zeros = {key: np.zeros(r.size) for key in _SHADOW_KEYS}
    # Pair each grid point with a (deterministically) shuffled copy of the grid
    # so the two receivers are effectively independent while both marginals
    # remain the exact equal-area grid.
    permutation = np.random.default_rng(20480).permutation(r.size)
    return ConfigurationSamples(r, theta, r[permutation], theta[permutation], zeros)


def average_policies(
    scenario: Scenario,
    d_threshold: float,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int | None = 0,
    method: str = "auto",
    samples: ConfigurationSamples | None = None,
) -> PolicyAverages:
    """Expected per-sender capacity of every MAC policy for one scenario.

    Parameters
    ----------
    scenario:
        The ``(Rmax, D, alpha, sigma, N)`` scenario to evaluate.
    d_threshold:
        Carrier-sense threshold expressed as an equivalent distance.
    n_samples:
        Monte-Carlo sample count (ignored when an explicit ``samples`` batch
        or the quadrature method is used).
    seed:
        Seed for the Monte-Carlo random generator; fixed by default so that
        tables and tests are reproducible.
    method:
        ``"montecarlo"``, ``"quadrature"`` (sigma = 0 only), or ``"auto"``
        (quadrature when sigma = 0, Monte Carlo otherwise).
    samples:
        Optional pre-drawn configuration batch (for common-random-number
        sweeps over ``D`` or thresholds).
    """
    if d_threshold <= 0:
        raise ValueError("threshold distance must be positive")
    if method not in ("auto", "montecarlo", "quadrature"):
        raise ValueError(f"unknown method {method!r}")
    if method == "quadrature" and scenario.sigma_db != 0.0:
        raise ValueError("quadrature integration requires sigma_db = 0")

    if samples is None:
        if method == "quadrature" or (method == "auto" and scenario.sigma_db == 0.0):
            samples = _quadrature_samples(scenario.rmax)
        else:
            rng = np.random.default_rng(seed)
            samples = draw_configuration(scenario.rmax, n_samples, rng)
    return _evaluate(scenario, d_threshold, samples)


def single_sender_average(
    rmax: float,
    alpha: float,
    noise: float,
    sigma_db: float = 0.0,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int | None = 0,
) -> float:
    """Expected capacity of a lone sender over the receiver disc."""
    if sigma_db == 0.0:
        r, _theta, weights = receiver_grid(rmax, 200, 8)
        values = c_single(r, alpha, noise)
        return float(np.sum(values * weights))
    rng = np.random.default_rng(seed)
    r, _theta = sample_receiver_positions(rmax, n_samples, rng)
    gains = db_to_linear(rng.normal(0.0, sigma_db, size=n_samples))
    return float(np.mean(c_single(r, alpha, noise, gains)))


@lru_cache(maxsize=None)
def _normalization_capacity_cached(alpha: float, noise: float, rmax: float) -> float:
    return single_sender_average(rmax, alpha, noise, sigma_db=0.0)


def normalization_capacity(alpha: float, noise: float, rmax: float = 20.0) -> float:
    """The paper's normalisation constant: Rmax = 20, D = infinity throughput.

    At infinite separation, concurrency equals the competition-free capacity,
    so this is simply the lone-sender average over an Rmax = 20 disc.

    Memoised by ``(alpha, noise, rmax)``: the quadrature integral is
    deterministic in its arguments, and the threshold/figure sweeps ask for
    the same normalisation constant at every grid point.
    """
    return _normalization_capacity_cached(float(alpha), float(noise), float(rmax))


def throughput_curves(
    rmax: float,
    d_values: Sequence[float],
    d_threshold: float,
    alpha: float,
    noise: float,
    sigma_db: float = 0.0,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int | None = 0,
    normalize: bool = True,
) -> Dict[str, np.ndarray]:
    """Average throughput of every policy as a function of sender separation D.

    This is the machinery behind Figures 4, 5, 6 and 9.  Returns a dict with
    keys ``"d"``, ``"multiplexing"``, ``"concurrent"``, ``"carrier_sense"``,
    ``"optimal"``, ``"upper_bound"``, and ``"defer_probability"``; capacity
    arrays are normalised to the Rmax = 20, D = infinity value when
    ``normalize`` is true (the paper's vertical axis).
    """
    d_values = np.asarray(list(d_values), dtype=float)
    if d_values.size == 0:
        raise ValueError("need at least one D value")
    if np.any(d_values <= 0):
        raise ValueError("all D values must be positive")

    if sigma_db == 0.0:
        samples = _quadrature_samples(rmax)
    else:
        rng = np.random.default_rng(seed)
        samples = draw_configuration(rmax, n_samples, rng)

    keys = ("multiplexing", "concurrent", "carrier_sense", "optimal", "upper_bound")
    results = {key: np.empty(d_values.size) for key in keys}
    results["defer_probability"] = np.empty(d_values.size)
    base = Scenario(rmax=rmax, d=float(d_values[0]), alpha=alpha, sigma_db=sigma_db, noise=noise)
    for i, d in enumerate(d_values):
        averages = _evaluate(base.with_d(float(d)), d_threshold, samples)
        for key in keys:
            results[key][i] = getattr(averages, key if key != "carrier_sense" else "carrier_sense")
        results["defer_probability"][i] = averages.defer_probability

    if normalize:
        norm = normalization_capacity(alpha, noise)
        for key in keys:
            results[key] = results[key] / norm
    results["d"] = d_values
    return results
