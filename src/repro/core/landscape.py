"""Capacity "landscape" maps (Figure 2).

Figure 2 plots link capacity as a function of receiver position -- a capacity
map -- for a sender at the origin and an interferer on the x-axis at distance
``D``, under no competition, multiplexing, and concurrency.  These maps are
computed on a Cartesian grid with shadowing disabled, exactly as in the paper
("for clarity, in these plots we ignore shadowing").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..constants import DEFAULT_NOISE_RATIO, DEFAULT_PATH_LOSS_EXPONENT
from ..capacity.shannon import shannon_capacity

__all__ = ["CapacityMap", "capacity_map"]

Mode = Literal["single", "multiplexing", "concurrency"]


@dataclass(frozen=True)
class CapacityMap:
    """A capacity map over a Cartesian grid of receiver positions.

    Attributes
    ----------
    x, y:
        1-D coordinate arrays (the grid is their Cartesian product).
    capacity:
        2-D array, indexed ``[i, j]`` for position ``(x[i], y[j])``.
    mode:
        Which MAC situation the map depicts.
    d:
        Interferer distance (only meaningful for concurrency maps).
    """

    x: np.ndarray
    y: np.ndarray
    capacity: np.ndarray
    mode: str
    d: float | None
    alpha: float
    noise: float

    def value_at(self, x: float, y: float) -> float:
        """Capacity at the grid point nearest to ``(x, y)``."""
        i = int(np.argmin(np.abs(self.x - x)))
        j = int(np.argmin(np.abs(self.y - y)))
        return float(self.capacity[i, j])

    def peak_position(self) -> tuple[float, float]:
        """Grid position of the capacity peak (should be the transmitter)."""
        i, j = np.unravel_index(int(np.argmax(self.capacity)), self.capacity.shape)
        return float(self.x[i]), float(self.y[j])


def capacity_map(
    mode: Mode,
    d: float | None = None,
    extent: float = 150.0,
    resolution: int = 121,
    alpha: float = DEFAULT_PATH_LOSS_EXPONENT,
    noise: float = DEFAULT_NOISE_RATIO,
    r_min: float = 0.5,
) -> CapacityMap:
    """Compute a Figure-2 style capacity map.

    Parameters
    ----------
    mode:
        ``"single"`` (no competition), ``"multiplexing"``, or
        ``"concurrency"``.
    d:
        Interferer distance; required for concurrency, ignored otherwise.
        The interferer sits at ``(-d, 0)`` as in the model geometry.
    extent:
        Half-width of the square map in normalised distance units.
    resolution:
        Number of grid points per axis.
    r_min:
        Distances are clamped below by this value to avoid the (physically
        meaningless) singularity at zero range.
    """
    if mode not in ("single", "multiplexing", "concurrency"):
        raise ValueError(f"unknown mode {mode!r}")
    if mode == "concurrency":
        if d is None or d <= 0:
            raise ValueError("concurrency maps require a positive interferer distance d")
    x = np.linspace(-extent, extent, resolution)
    y = np.linspace(-extent, extent, resolution)
    xx, yy = np.meshgrid(x, y, indexing="ij")
    r = np.maximum(np.hypot(xx, yy), r_min)
    signal = np.power(r, -alpha)

    if mode == "concurrency":
        delta = np.maximum(np.hypot(xx + d, yy), r_min)
        interference = np.power(delta, -alpha)
        snr = signal / (noise + interference)
        cap = shannon_capacity(snr)
    else:
        snr = signal / noise
        cap = shannon_capacity(snr)
        if mode == "multiplexing":
            cap = 0.5 * cap

    return CapacityMap(
        x=x,
        y=y,
        capacity=np.asarray(cap),
        mode=mode,
        d=None if mode != "concurrency" else float(d),
        alpha=alpha,
        noise=noise,
    )
