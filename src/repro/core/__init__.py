"""The paper's primary contribution: the analytical carrier-sense model.

Everything in this package operates in the paper's normalised units (unit
transmit power folded into the noise floor, distances such that r = 20 gives
roughly 26 dB SNR) and produces the quantities reported in Section 3:
per-configuration capacities, spatially averaged throughput under each MAC
policy, efficiency tables, optimal thresholds, regime classifications,
capacity landscapes, receiver-preference maps, and the shadowing analyses.
"""

from .averaging import (
    ConfigurationSamples,
    PolicyAverages,
    average_policies,
    draw_configuration,
    normalization_capacity,
    single_sender_average,
    throughput_curves,
)
from .efficiency import (
    EfficiencyCell,
    EfficiencyTable,
    fixed_threshold_table,
    tuned_threshold_table,
)
from .geometry import Scenario, interferer_distance, receiver_grid, sample_receiver_positions
from .landscape import CapacityMap, capacity_map
from .preferences import (
    PREFER_CONCURRENCY,
    PREFER_MULTIPLEXING,
    STARVED,
    PreferenceFractions,
    PreferenceMap,
    preference_fractions,
    preference_map,
)
from .shadowing_model import (
    MistakeAnalysis,
    mistake_analysis,
    shadowing_capacity_gain,
    shadowing_comparison_curves,
    snr_estimate_sigma_db,
    spurious_concurrency_probability,
)
from .thresholds import (
    ThresholdCurvePoint,
    classify_regime,
    optimal_threshold,
    recommended_factory_threshold,
    regime_boundaries,
    short_range_threshold_approx,
    threshold_curve,
)
from .throughput import (
    c_carrier_sense,
    c_concurrent,
    c_multiplexing,
    c_optimal_pair,
    c_single,
    c_upper_bound,
    carrier_sense_defers,
    sensed_power,
    threshold_distance_from_power,
    threshold_power_from_distance,
)

__all__ = [
    "Scenario",
    "interferer_distance",
    "sample_receiver_positions",
    "receiver_grid",
    "c_single",
    "c_multiplexing",
    "c_concurrent",
    "c_carrier_sense",
    "c_optimal_pair",
    "c_upper_bound",
    "carrier_sense_defers",
    "sensed_power",
    "threshold_power_from_distance",
    "threshold_distance_from_power",
    "PolicyAverages",
    "ConfigurationSamples",
    "average_policies",
    "draw_configuration",
    "single_sender_average",
    "normalization_capacity",
    "throughput_curves",
    "optimal_threshold",
    "short_range_threshold_approx",
    "classify_regime",
    "regime_boundaries",
    "recommended_factory_threshold",
    "threshold_curve",
    "ThresholdCurvePoint",
    "EfficiencyCell",
    "EfficiencyTable",
    "fixed_threshold_table",
    "tuned_threshold_table",
    "CapacityMap",
    "capacity_map",
    "PreferenceMap",
    "PreferenceFractions",
    "preference_map",
    "preference_fractions",
    "PREFER_CONCURRENCY",
    "PREFER_MULTIPLEXING",
    "STARVED",
    "shadowing_comparison_curves",
    "MistakeAnalysis",
    "mistake_analysis",
    "spurious_concurrency_probability",
    "snr_estimate_sigma_db",
    "shadowing_capacity_gain",
]
