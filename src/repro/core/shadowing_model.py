"""Shadowing-specific analyses (Section 3.4 and Figure 9).

The general averaging machinery already handles sigma > 0; this module adds
the analyses the paper performs specifically to understand shadowing:

* the Figure 9 throughput curves with 8 dB shadowing overlaid on the
  deterministic curves;
* the worked example of Section 3.4 (an Rmax = 20 network with Dthresh = 40
  facing an interferer at D = 20): the probability that shadowing makes the
  interferer *appear* beyond the threshold, the probability that a receiver
  is left with a sub-0 dB SNR when that mistake happens, and the combined
  "very poor SNR" probability (about 4 % in the paper);
* the uncertainty budget of a sender estimating its receiver's SNR
  (sigma * sqrt(3), about 14 dB for 8 dB shadowing);
* the shadowing-induced capacity *gain* at long range ("you can't make a bad
  link worse than no link, but you can make it a whole lot better").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np
from scipy import stats

from ..constants import DEFAULT_NOISE_RATIO, DEFAULT_PATH_LOSS_EXPONENT
from ..propagation.shadowing import combined_sigma_db
from ..units import db_to_linear
from .averaging import draw_configuration, throughput_curves
from .geometry import Scenario, sample_receiver_positions
from .throughput import c_concurrent, carrier_sense_defers

__all__ = [
    "shadowing_comparison_curves",
    "MistakeAnalysis",
    "mistake_analysis",
    "spurious_concurrency_probability",
    "snr_estimate_sigma_db",
    "shadowing_capacity_gain",
]


def shadowing_comparison_curves(
    rmax: float,
    d_values: Sequence[float],
    d_threshold: float,
    alpha: float = DEFAULT_PATH_LOSS_EXPONENT,
    noise: float = DEFAULT_NOISE_RATIO,
    sigma_db: float = 8.0,
    n_samples: int = 20_000,
    seed: int | None = 0,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Figure 9: throughput-vs-D curves with and without shadowing.

    Returns ``{"shadowed": curves, "deterministic": curves}`` where each value
    is the dict produced by :func:`repro.core.averaging.throughput_curves`.
    """
    shadowed = throughput_curves(
        rmax, d_values, d_threshold, alpha, noise, sigma_db=sigma_db,
        n_samples=n_samples, seed=seed,
    )
    deterministic = throughput_curves(
        rmax, d_values, d_threshold, alpha, noise, sigma_db=0.0,
        n_samples=n_samples, seed=seed,
    )
    return {"shadowed": shadowed, "deterministic": deterministic}


def spurious_concurrency_probability(
    d: float, d_threshold: float, alpha: float, sigma_db: float
) -> float:
    """Probability that shadowing makes a close interferer appear beyond threshold.

    Carrier sense defers when ``D ** -alpha * L'' > Dthresh ** -alpha``; in dB
    the mistake (spurious concurrency for D < Dthresh) happens when the
    shadowing value falls below ``10 * alpha * log10(D / Dthresh)``.
    """
    if d <= 0 or d_threshold <= 0:
        raise ValueError("distances must be positive")
    if sigma_db < 0:
        raise ValueError("sigma must be non-negative")
    margin_db = 10.0 * alpha * np.log10(d / d_threshold)
    if sigma_db == 0.0:
        return 1.0 if margin_db > 0 else 0.0
    return float(stats.norm.cdf(margin_db, scale=sigma_db))


def snr_estimate_sigma_db(sigma_db: float, n_components: int = 3) -> float:
    """Pessimistic uncertainty (dB) of a sender estimating its receiver's SNR.

    Section 3.4 sums the three independent shadowing dimensions (signal power
    at the receiver, interference power at the receiver, and sensed power at
    the transmitter), giving ``sigma * sqrt(3)``, about 14 dB for 8 dB
    shadowing.
    """
    if n_components < 1:
        raise ValueError("need at least one shadowing component")
    return combined_sigma_db(*([sigma_db] * n_components))


@dataclass(frozen=True)
class MistakeAnalysis:
    """Results of the Section 3.4 worked example."""

    scenario: Scenario
    d_threshold: float
    spurious_concurrency_probability: float
    bad_snr_given_concurrency: float
    combined_bad_snr_probability: float
    closer_to_interferer_fraction: float


def mistake_analysis(
    rmax: float = 20.0,
    d: float = 20.0,
    d_threshold: float = 40.0,
    alpha: float = DEFAULT_PATH_LOSS_EXPONENT,
    noise: float = DEFAULT_NOISE_RATIO,
    sigma_db: float = 8.0,
    n_samples: int = 200_000,
    seed: int | None = 0,
    bad_snr_db: float = 0.0,
) -> MistakeAnalysis:
    """Monte-Carlo version of the Section 3.4 worked example.

    Estimates (a) the probability that the sender spuriously chooses
    concurrency for an interferer at distance ``d`` inside the threshold,
    (b) the probability that a receiver ends up below ``bad_snr_db`` given
    that concurrency happened, and (c) their product -- the fraction of
    configurations left with very poor SNR, which the paper puts at ~4 %.
    The geometric proxy the paper uses (fraction of the disc closer to the
    interferer than to the sender) is reported alongside.
    """
    scenario = Scenario(rmax=rmax, d=d, alpha=alpha, sigma_db=sigma_db, noise=noise)
    rng = np.random.default_rng(seed)
    r, theta = sample_receiver_positions(rmax, n_samples, rng)
    gain_signal = np.asarray(db_to_linear(rng.normal(0.0, sigma_db, n_samples)))
    gain_interference = np.asarray(db_to_linear(rng.normal(0.0, sigma_db, n_samples)))
    gain_sense = np.asarray(db_to_linear(rng.normal(0.0, sigma_db, n_samples)))

    defers = carrier_sense_defers(d, d_threshold, alpha, gain_sense)
    concurrent = ~np.asarray(defers)
    p_spurious = float(np.mean(concurrent))

    conc_capacity_snr = (
        np.power(r, -alpha)
        * gain_signal
        / (noise + np.power(np.sqrt((r * np.cos(theta) + d) ** 2 + (r * np.sin(theta)) ** 2), -alpha) * gain_interference)
    )
    bad = conc_capacity_snr < db_to_linear(bad_snr_db)
    p_bad_given_conc = float(np.mean(bad))
    combined = p_spurious * p_bad_given_conc

    # Geometric proxy: fraction of the disc closer to the interferer at (-d, 0)
    # than to the sender at the origin.
    x = r * np.cos(theta)
    y = r * np.sin(theta)
    closer = np.hypot(x + d, y) < np.hypot(x, y)
    closer_fraction = float(np.mean(closer))

    return MistakeAnalysis(
        scenario=scenario,
        d_threshold=d_threshold,
        spurious_concurrency_probability=p_spurious,
        bad_snr_given_concurrency=p_bad_given_conc,
        combined_bad_snr_probability=combined,
        closer_to_interferer_fraction=closer_fraction,
    )


def shadowing_capacity_gain(
    rmax: float,
    d: float,
    alpha: float = DEFAULT_PATH_LOSS_EXPONENT,
    noise: float = DEFAULT_NOISE_RATIO,
    sigma_db: float = 8.0,
    n_samples: int = 100_000,
    seed: int | None = 0,
) -> float:
    """Ratio of shadowed to unshadowed average concurrency capacity.

    Because capacity is convex in dB SNR at low SNR, zero-mean dB shadowing
    *increases* the average: values above one confirm the paper's observation
    that "in the long range, concurrency fares surprisingly well" under
    shadowing.
    """
    rng = np.random.default_rng(seed)
    r, theta = sample_receiver_positions(rmax, n_samples, rng)
    gain_signal = np.asarray(db_to_linear(rng.normal(0.0, sigma_db, n_samples)))
    gain_interference = np.asarray(db_to_linear(rng.normal(0.0, sigma_db, n_samples)))
    shadowed = np.mean(
        c_concurrent(r, theta, d, alpha, noise, gain_signal, gain_interference)
    )
    plain = np.mean(c_concurrent(r, theta, d, alpha, noise))
    return float(shadowed / plain)
