"""Unit conversions for power, SNR, and distances.

Every module in the reproduction works either in linear power ratios or in
decibels depending on what is most natural; these helpers keep the conversions
in one well-tested place.  All functions accept scalars or NumPy arrays and
return the same shape.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, int, np.ndarray]

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_milliwatts",
    "milliwatts_to_dbm",
    "snr_db",
    "ratio_to_distance_factor",
    "distance_factor_to_db",
    "mbps_to_bps",
    "bps_to_mbps",
]


def db_to_linear(value_db: ArrayLike) -> ArrayLike:
    """Convert a decibel quantity to a linear power ratio."""
    return np.power(10.0, np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(value: ArrayLike) -> ArrayLike:
    """Convert a linear power ratio to decibels.

    Zero or negative inputs map to ``-inf`` rather than raising, matching the
    convention that "no power" is infinitely far below any threshold.
    """
    arr = np.asarray(value, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = 10.0 * np.log10(arr)
    out = np.where(arr > 0, out, -np.inf)
    if np.isscalar(value) or np.ndim(value) == 0:
        return float(out)
    return out


def dbm_to_watts(value_dbm: ArrayLike) -> ArrayLike:
    """Convert dBm to watts."""
    return np.power(10.0, (np.asarray(value_dbm, dtype=float) - 30.0) / 10.0)


def watts_to_dbm(value_watts: ArrayLike) -> ArrayLike:
    """Convert watts to dBm."""
    return linear_to_db(np.asarray(value_watts, dtype=float)) + 30.0


def dbm_to_milliwatts(value_dbm: ArrayLike) -> ArrayLike:
    """Convert dBm to milliwatts."""
    return np.power(10.0, np.asarray(value_dbm, dtype=float) / 10.0)


def milliwatts_to_dbm(value_mw: ArrayLike) -> ArrayLike:
    """Convert milliwatts to dBm."""
    return linear_to_db(value_mw)


def snr_db(signal: ArrayLike, noise: ArrayLike) -> ArrayLike:
    """Signal-to-noise ratio in dB given linear signal and noise powers."""
    return linear_to_db(np.asarray(signal, dtype=float) / np.asarray(noise, dtype=float))


def ratio_to_distance_factor(ratio_db: ArrayLike, alpha: float) -> ArrayLike:
    """Convert a power ratio in dB to the equivalent distance factor.

    Under a path-loss exponent ``alpha``, a power change of ``ratio_db``
    corresponds to scaling distance by ``10 ** (ratio_db / (10 * alpha))``.
    The paper uses this repeatedly, e.g. "14 dB's equivalent in path loss is a
    distance factor of about 3x" for alpha = 3 (Section 3.4).
    """
    if alpha <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {alpha}")
    return np.power(10.0, np.asarray(ratio_db, dtype=float) / (10.0 * alpha))


def distance_factor_to_db(factor: ArrayLike, alpha: float) -> ArrayLike:
    """Inverse of :func:`ratio_to_distance_factor`."""
    if alpha <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {alpha}")
    return 10.0 * alpha * np.log10(np.asarray(factor, dtype=float))


def mbps_to_bps(value_mbps: ArrayLike) -> ArrayLike:
    """Convert megabits per second to bits per second."""
    return np.asarray(value_mbps, dtype=float) * 1e6


def bps_to_mbps(value_bps: ArrayLike) -> ArrayLike:
    """Convert bits per second to megabits per second."""
    return np.asarray(value_bps, dtype=float) / 1e6
